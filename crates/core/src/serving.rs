//! The end-to-end serving simulation.
//!
//! [`ServingSim`] binds a workload trace, a cluster of engine instances
//! (wrapped in llumlets), the migration coordinator, and a scheduling policy
//! into one deterministic event-driven run. Every benchmark binary, example,
//! and integration test drives experiments through this type.
//!
//! The event loop mirrors the paper's architecture (§4.3): the global
//! scheduler dispatches new requests to the freest instance, periodically
//! pairs migration sources with destinations by freeness, and auto-scales on
//! the cluster-average freeness; llumlets make all per-request decisions
//! locally (admission, preemption, victim selection) and execute migrations
//! through the Figure 7 handshake.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use llumnix_engine::{
    EngineConfig, EngineEvent, InstanceEngine, InstanceId, PriorityPair, RequestId, RequestMeta,
    SeqState,
};
use llumnix_faults::{FaultKind, FaultPlan};
use llumnix_metrics::{FaultStats, RecordPriority, RequestRecord, SummaryAccumulator, TimeSeries};
use llumnix_migration::{
    AbortReason, CommitResult, CoordinatorStats, MigrationConfig, MigrationCoordinator,
    MigrationId, StageOutcome, StartOutcome,
};
use llumnix_model::InstanceSpec;
use llumnix_sim::{merge_windowed, EffectKey, EventQueue, ShardPool, SimDuration, SimTime};
use llumnix_workload::Trace;

use crate::central::{CentralScheduler, CentralSchedulerModel};
use crate::index::{DispatchIndex, IndexPolicy};
use crate::llumlet::Llumlet;
use crate::policy::{
    AutoScaleConfig, AutoScaler, Dispatcher, MigrationThresholds, ScaleAction, SchedulerKind,
    VictimPolicy,
};
use crate::shard::{
    drain_window, Effect, EffectCounts, ShardConfig, ShardState, ShardedFleet, WindowOutbox,
    WindowStats,
};
use crate::virtual_usage::{HeadroomConfig, QueuingRule};

/// Injected failures (§5's fault-tolerance behaviours).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailureSpec {
    /// An instance (and its llumlet) fails at `at`; running requests abort,
    /// in-flight migrations touching it abort per the handshake rules. If
    /// `restart_after` is set, a replacement instance launches that much
    /// later (Ray restarting the actor).
    Instance {
        /// The failing instance.
        instance: InstanceId,
        /// When it fails.
        at: SimTime,
        /// Optional replacement delay.
        restart_after: Option<SimDuration>,
    },
    /// The global scheduler fails at `at` for `duration`: the frontends fall
    /// back to scheduler-bypass round-robin dispatch and migration pauses.
    GlobalScheduler {
        /// When it fails.
        at: SimTime,
        /// How long until it recovers.
        duration: SimDuration,
    },
}

/// Full configuration of a serving run.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Scheduling policy under test.
    pub scheduler: SchedulerKind,
    /// Instance type for every instance.
    pub spec: InstanceSpec,
    /// Engine tunables.
    pub engine: EngineConfig,
    /// Migration tunables.
    pub migration: MigrationConfig,
    /// Instances at t = 0.
    pub initial_instances: u32,
    /// Execution-priority headroom (only honored by `Llumnix`).
    pub headroom: HeadroomConfig,
    /// How often migration pairing re-runs.
    pub migration_interval: SimDuration,
    /// Freeness thresholds for pairing.
    pub migration_thresholds: MigrationThresholds,
    /// Which request a source llumlet migrates out first.
    pub victim_policy: VictimPolicy,
    /// Auto-scaling configuration, if enabled.
    pub autoscale: Option<AutoScaleConfig>,
    /// Timeline sampling (and scaling-observation) interval.
    pub sample_interval: SimDuration,
    /// Centralized-scheduler stall model (used by `Centralized` only).
    pub central: CentralSchedulerModel,
    /// Injected failures.
    pub failures: Vec<FailureSpec>,
    /// Seeded fault schedule replayed as first-class events (crashes,
    /// stragglers, migration-link failures). Empty by default. Unlike the
    /// scripted [`FailureSpec`] path, requests lost to a planned crash are
    /// *re-dispatched* through the main dispatcher, not aborted.
    pub fault_plan: FaultPlan,
    /// Hard wall-clock cap on the simulation (guards runaway configs).
    pub max_sim_time: SimTime,
    /// Sharded windowed core (DESIGN.md §10). `None` keeps the classic
    /// single-queue event loop; `Some` partitions the fleet into shards
    /// synchronized by conservative time windows. The windowed schedule is
    /// identical at every shard count (including 1), but differs from the
    /// classic loop: the window barrier models the llumlet ↔ scheduler RPC
    /// latency the classic loop idealizes to zero.
    pub shard: Option<ShardConfig>,
}

impl ServingConfig {
    /// A sensible default: `n` LLaMA-7B instances, no auto-scaling.
    pub fn new(scheduler: SchedulerKind, n: u32) -> Self {
        ServingConfig {
            scheduler,
            spec: InstanceSpec::llama_7b_a10(),
            engine: EngineConfig::default(),
            migration: MigrationConfig::default(),
            initial_instances: n,
            headroom: if scheduler.uses_priorities() {
                HeadroomConfig::paper_default()
            } else {
                HeadroomConfig::DISABLED
            },
            migration_interval: SimDuration::from_millis(100),
            migration_thresholds: MigrationThresholds::default(),
            victim_policy: VictimPolicy::default(),
            autoscale: None,
            sample_interval: SimDuration::from_secs(1),
            central: CentralSchedulerModel::default(),
            failures: Vec::new(),
            fault_plan: FaultPlan::empty(),
            max_sim_time: SimTime::from_secs(24 * 3600),
            shard: None,
        }
    }

    /// Enables auto-scaling.
    pub fn with_autoscale(mut self, cfg: AutoScaleConfig) -> Self {
        self.autoscale = Some(cfg);
        self
    }

    /// Replays a seeded fault schedule during the run.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Uses a different instance spec.
    pub fn with_spec(mut self, spec: InstanceSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Runs on the sharded windowed core instead of the classic loop.
    pub fn with_shards(mut self, shard: ShardConfig) -> Self {
        self.shard = Some(shard);
        self
    }
}

/// Everything measured by one serving run.
#[derive(Debug, Clone)]
pub struct ServingOutput {
    /// Scheduler that produced this output.
    pub scheduler: SchedulerKind,
    /// One record per completed request.
    pub records: Vec<RequestRecord>,
    /// Requests aborted (admission-impossible or instance failure).
    pub aborted: u64,
    /// Fragmented-memory proportion over time (Figure 12's definition).
    pub fragmentation: TimeSeries,
    /// Total free blocks over time (Figure 5).
    pub free_blocks: TimeSeries,
    /// Head-of-line demands satisfiable by total free memory (Figure 5).
    pub hol_satisfiable: TimeSeries,
    /// Total queued requests over time.
    pub queued: TimeSeries,
    /// Alive instance count over time (cost metric, Figures 14/15).
    pub instances: TimeSeries,
    /// Time-weighted average instance count.
    pub avg_instances: f64,
    /// Migration counters.
    pub migration_stats: CoordinatorStats,
    /// Scheduling-stall summary per engine step, in seconds (Figure 16).
    pub stalls: llumnix_metrics::Summary,
    /// Batch sizes of decode steps that contained a high-execution-priority
    /// request (diagnostic for the §6.4 isolation mechanism).
    pub high_step_batches: llumnix_metrics::Summary,
    /// When the last request finished.
    pub makespan: SimTime,
    /// Simulation events processed by the event loop (throughput metric).
    pub events_processed: u64,
    /// Events on the serial critical path of the run: every coordinator
    /// event, plus — per conservative window — only the *busiest* shard's
    /// drained events (the others drain concurrently). The ratio
    /// `events_processed / critical_path_events` is the machine-independent
    /// upper bound on the wall-clock speedup of giving each shard its own
    /// core; in classic (unsharded) mode the two counters are equal.
    pub critical_path_events: u64,
    /// Per-window shard-balance statistics (windowed mode only; zeroed in
    /// the classic loop, which has no windows).
    pub window_stats: WindowStats,
    /// Failure/recovery accounting for the fault-injection subsystem.
    pub fault_stats: FaultStats,
}

/// Simulation events.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    Arrival(usize),
    StepDone(InstanceId),
    MigrationStage(MigrationId),
    MigrationCommit(MigrationId),
    MigrationTick,
    Sample,
    Fail(usize),
    PlannedFault(usize),
    GlobalRecover,
    InstanceRestart,
}

/// The running simulation.
pub struct ServingSim {
    config: ServingConfig,
    trace: Trace,
    high_ids: BTreeSet<u64>,
    queue: EventQueue<Event>,
    now: SimTime,
    store: ShardedFleet,
    index: DispatchIndex,
    /// Effective headroom config for this run (constant: derived from the
    /// scheduler kind and config only).
    headroom: HeadroomConfig,
    /// Under the `Gradual` queuing rule reports drift with time alone, so
    /// every refresh must revisit the whole fleet instead of the dirty set.
    refresh_all: bool,
    /// `(serving_from, id)` for instances still in their startup delay: the
    /// starting → serving transition happens by time passing, not by an
    /// engine event, so the refresh re-checks them when their deadline hits.
    starting_queue: Vec<(SimTime, InstanceId)>,
    dirty_scratch: Vec<InstanceId>,
    next_instance: u32,
    dispatcher: Dispatcher,
    bypass_dispatcher: Dispatcher,
    coordinator: MigrationCoordinator,
    /// Current migration pairing (source → destination). A `BTreeMap` so the
    /// per-tick `continue_pair` sweep visits sources in id order: the sweep
    /// pushes stage events whose timestamps can collide, and the queue breaks
    /// ties by push order, so the visit order is part of the schedule.
    pairs: BTreeMap<InstanceId, InstanceId>,
    scaler: Option<AutoScaler>,
    central: CentralScheduler,
    global_down: bool,
    undispatched: VecDeque<usize>,
    records: Vec<RequestRecord>,
    aborted: u64,
    stalls_acc: SummaryAccumulator,
    fragmentation: TimeSeries,
    free_blocks: TimeSeries,
    hol_satisfiable: TimeSeries,
    queued: TimeSeries,
    instances_ts: TimeSeries,
    arrivals_done: bool,
    /// Windowed mode: arrivals applied at barriers so far (`arrivals_done`
    /// flips when the count reaches the trace length).
    arrivals_applied: usize,
    makespan: SimTime,
    /// Failure/recovery counters for the fault-injection subsystem.
    fault_stats: FaultStats,
    /// First-token-after-crash latencies for redispatched requests.
    recovery_acc: SummaryAccumulator,
    /// Request id → time of the crash that lost it (drained into
    /// `recovery_acc` when the redispatched request produces a token).
    crash_lost_at: BTreeMap<u64, SimTime>,
    /// Instances whose migration link is down, and until when. Global (not
    /// per-shard): link state gates migrations, which the coordinator runs.
    link_down_until: BTreeMap<InstanceId, SimTime>,
    high_batch_acc: SummaryAccumulator,
    order_scratch: Vec<InstanceId>,
    events_processed: u64,
    /// Effective periodic-tick intervals: the configured intervals times the
    /// fleet-size coarsening factor (see [`tick_scale`]). Constant for a run.
    sample_interval: SimDuration,
    migration_interval: SimDuration,
    /// Windowed mode (DESIGN.md §10): `config.shard.is_some()`.
    windowed: bool,
    /// Conservative window length (the modeled llumlet ↔ scheduler RPC
    /// latency). Zero in classic mode.
    lookahead: SimDuration,
    /// Window-length autotuning enabled (see [`ShardConfig::autotune`]).
    autotune: bool,
    /// Current stretch multiplier: quiescent windows may extend to this many
    /// lookahead cells. Doubles (capped) after an effect-sparse window,
    /// resets to 1 after a dense one — a pure cadence heuristic; the
    /// quiescence gates alone guarantee stretched schedules are identical.
    stretch_mult: u64,
    /// Live instances currently flagged `terminating` (scale-down drains).
    /// Maintained exactly: +1 when termination begins, −1 when the instance
    /// retires or fails. Gates window stretching: terminating instances emit
    /// `CheckTermination` effects whose application is barrier-time
    /// sensitive.
    terminating_count: usize,
    /// Drain windows on worker threads even on a single-CPU host.
    force_parallel: bool,
    /// Worker threads for parallel window drains (windowed mode with K > 1
    /// on a multi-core host, or `force_parallel`).
    pool: Option<ShardPool<ShardState, WindowOutbox>>,
    /// Effects applied at barriers, by class (reconciled against the shards'
    /// emission ledgers at teardown).
    applied: EffectCounts,
    /// Shard-local events folded into `events_processed` at barriers
    /// (reconciled against the shards' own counts at teardown).
    local_events_applied: u64,
    /// See [`ServingOutput::critical_path_events`].
    critical_path_events: u64,
    /// Per-shard event counts of live migration stage/commit handshakes
    /// handled since the last window closed (paper Figure 7 runs on the
    /// llumlet pair, so this work belongs to the endpoint shards, not the
    /// coordinator). Folded into the next window's busiest-shard tally.
    rpc_tally: Vec<u64>,
    /// See [`ServingOutput::window_stats`].
    window_stats: WindowStats,
    /// Initial events (arrivals, ticks, scripted failures, fault chain) have
    /// been seeded. Flips on the first `run`/`run_until` call, so a snapshot
    /// taken before any progress forks cleanly.
    seeded: bool,
    /// The run crossed `max_sim_time` and must not process further events.
    halted: bool,
}

/// A deterministic snapshot of a running [`ServingSim`].
///
/// Structurally a deep copy of every piece of simulation state: the event
/// queue (both tiers plus the sequence counter), the instance store with
/// every engine's batches and block ledgers, the dispatch-index partitions,
/// the migration coordinator's reservations and handshake stages, the fault
/// maps, and all metric accumulators. The only thing *not* captured is the
/// worker-thread pool — pure drain plumbing, recreated lazily on resume —
/// and there is no hidden ambient state to miss: the deterministic crates
/// ban wall-clock reads and unordered iteration statically (`xtask lint`),
/// and all randomness (trace, fault plans) is expanded before t = 0.
///
/// The resume invariant: for any point `t` between two units of work,
/// `snapshot` → [`ServingSim::resume`] → run-to-completion produces the
/// byte-identical [`ServingOutput`] the uninterrupted run produces, at any
/// `--threads`/`--shards` setting (DESIGN.md §13).
#[derive(Clone)]
pub struct SimSnapshot {
    state: Box<ServingSim>,
}

impl Clone for ServingSim {
    /// A structural deep copy of the full simulation state — the basis of
    /// [`ServingSim::snapshot`]. Every field is a plain ordered container or
    /// scalar except the worker pool, which holds live threads: the clone
    /// starts with `pool: None` and the windowed loop recreates it lazily.
    /// Whether the pool exists only changes which thread computes a window
    /// drain, never the drain itself, so the clone's schedule is unchanged.
    fn clone(&self) -> Self {
        ServingSim {
            config: self.config.clone(),
            trace: self.trace.clone(),
            high_ids: self.high_ids.clone(),
            queue: self.queue.clone(),
            now: self.now,
            store: self.store.clone(),
            index: self.index.clone(),
            headroom: self.headroom,
            refresh_all: self.refresh_all,
            starting_queue: self.starting_queue.clone(),
            dirty_scratch: self.dirty_scratch.clone(),
            next_instance: self.next_instance,
            dispatcher: self.dispatcher.clone(),
            bypass_dispatcher: self.bypass_dispatcher.clone(),
            coordinator: self.coordinator.clone(),
            pairs: self.pairs.clone(),
            scaler: self.scaler.clone(),
            central: self.central.clone(),
            global_down: self.global_down,
            undispatched: self.undispatched.clone(),
            records: self.records.clone(),
            aborted: self.aborted,
            stalls_acc: self.stalls_acc.clone(),
            fragmentation: self.fragmentation.clone(),
            free_blocks: self.free_blocks.clone(),
            hol_satisfiable: self.hol_satisfiable.clone(),
            queued: self.queued.clone(),
            instances_ts: self.instances_ts.clone(),
            arrivals_done: self.arrivals_done,
            arrivals_applied: self.arrivals_applied,
            makespan: self.makespan,
            fault_stats: self.fault_stats.clone(),
            recovery_acc: self.recovery_acc.clone(),
            crash_lost_at: self.crash_lost_at.clone(),
            link_down_until: self.link_down_until.clone(),
            high_batch_acc: self.high_batch_acc.clone(),
            order_scratch: self.order_scratch.clone(),
            events_processed: self.events_processed,
            sample_interval: self.sample_interval,
            migration_interval: self.migration_interval,
            windowed: self.windowed,
            lookahead: self.lookahead,
            autotune: self.autotune,
            stretch_mult: self.stretch_mult,
            terminating_count: self.terminating_count,
            force_parallel: self.force_parallel,
            pool: None,
            applied: self.applied,
            local_events_applied: self.local_events_applied,
            critical_path_events: self.critical_path_events,
            rpc_tally: self.rpc_tally.clone(),
            window_stats: self.window_stats,
            seeded: self.seeded,
            halted: self.halted,
        }
    }
}

/// Coarsening factor for the periodic sampling and migration ticks.
///
/// Per-tick work grows linearly with the fleet, so at a fixed tick rate the
/// tick overhead grows linearly too while each instance's own state changes
/// no faster. Doubling the interval per fleet-size doubling past 256 keeps
/// the *per-instance* tick work constant. The factor is exactly 1 up to 256
/// instances, so every default-config figure keeps a byte-identical schedule
/// (DESIGN.md §7.3/§7.4).
fn tick_scale(instances: u32) -> u64 {
    u64::from(instances.div_ceil(256).next_power_of_two())
}

/// Cap on how many lookahead cells one stretched window may merge: 32 cells
/// = 64 ms at the default 2 ms lookahead, comfortably under the ≥ 100 ms
/// periodic-tick cadences, so a stretch can widen windows by an order of
/// magnitude while the global-event clamp still binds only occasionally.
const MAX_STRETCH_CELLS: u64 = 32;

/// Effect-sparsity budget for the autotune cadence: a window counts as
/// sparse — and the stretch multiplier doubles — when it drained at most
/// this many cross-shard effects per merged cell. Steady request drain-out
/// emits a couple of effects (finish + engine event) per completing
/// request, so a budget of one would freeze stretching exactly in the long
/// quiescent phases it exists for; arrival bursts at peak rate run tens of
/// effects per cell and still reset the multiplier. Correctness never rests
/// on this number — the quiescence gates in `stretched_end` alone keep
/// stretched schedules byte-identical.
const STRETCH_EFFECT_BUDGET_PER_CELL: u64 = 4;

impl ServingSim {
    /// Builds a simulation over `trace`.
    pub fn new(config: ServingConfig, trace: Trace) -> Self {
        assert!(config.initial_instances > 0, "need at least one instance");
        let scale = tick_scale(config.initial_instances);
        let high_ids = trace
            .requests
            .iter()
            .filter(|r| r.high_priority)
            .map(|r| r.id)
            .collect();
        let headroom = effective_headroom(&config);
        // First point where the headroom config meets a concrete instance
        // spec: a target above the KV capacity would silently clamp to zero
        // headroom (see `HeadroomConfig::headroom_for`); fail loudly here.
        headroom.validate_for_capacity(config.spec.geometry.capacity_tokens());
        let refresh_all = matches!(headroom.queuing_rule, QueuingRule::Gradual { .. });
        let index = DispatchIndex::new(IndexPolicy::for_run(
            config.scheduler,
            config.autoscale.is_some(),
        ));
        let (windowed, shard_count, lookahead, force_parallel, autotune) = match config.shard {
            Some(sc) => {
                assert!(sc.shards >= 1, "need at least one shard");
                assert!(
                    !sc.lookahead.is_zero(),
                    "windowed mode needs a nonzero lookahead"
                );
                (
                    true,
                    sc.shards,
                    sc.lookahead,
                    sc.force_parallel,
                    sc.autotune,
                )
            }
            None => (false, 1, SimDuration::ZERO, false, false),
        };
        let defer_steps = windowed && config.scheduler.has_central_stalls();
        let mut sim = ServingSim {
            coordinator: MigrationCoordinator::new(config.migration.clone()),
            central: CentralScheduler::new(config.central),
            scaler: config.autoscale.map(AutoScaler::new),
            sample_interval: config.sample_interval.saturating_mul(scale),
            migration_interval: config.migration_interval.saturating_mul(scale),
            config,
            trace,
            high_ids,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            store: ShardedFleet::new(shard_count, defer_steps),
            index,
            headroom,
            refresh_all,
            starting_queue: Vec::new(),
            dirty_scratch: Vec::new(),
            next_instance: 0,
            dispatcher: Dispatcher::new(),
            bypass_dispatcher: Dispatcher::new(),
            pairs: BTreeMap::new(),
            global_down: false,
            undispatched: VecDeque::new(),
            records: Vec::new(),
            aborted: 0,
            stalls_acc: SummaryAccumulator::new(),
            fragmentation: TimeSeries::new("fragmentation"),
            free_blocks: TimeSeries::new("free_blocks"),
            hol_satisfiable: TimeSeries::new("hol_satisfiable"),
            queued: TimeSeries::new("queued"),
            instances_ts: TimeSeries::new("instances"),
            arrivals_done: false,
            arrivals_applied: 0,
            makespan: SimTime::ZERO,
            fault_stats: FaultStats::default(),
            recovery_acc: SummaryAccumulator::new(),
            crash_lost_at: BTreeMap::new(),
            link_down_until: BTreeMap::new(),
            high_batch_acc: SummaryAccumulator::new(),
            order_scratch: Vec::new(),
            events_processed: 0,
            windowed,
            lookahead,
            autotune,
            stretch_mult: 1,
            terminating_count: 0,
            force_parallel,
            pool: None,
            applied: EffectCounts::default(),
            local_events_applied: 0,
            critical_path_events: 0,
            // Sized up front (not at `run_windowed` entry) so a snapshot
            // taken mid-run carries the handshake tallies.
            rpc_tally: vec![0; shard_count],
            window_stats: WindowStats::default(),
            seeded: false,
            halted: false,
        };
        if sim.windowed {
            // Shard-local index maintenance: each shard folds its own dirty
            // set into its partition at every window end, except under the
            // Gradual rule, whose reports drift with bare time (the
            // coordinator full-sweeps at each decision instead — partitions
            // then update only through `refresh_fleet`).
            let policy = IndexPolicy::for_run(sim.config.scheduler, sim.config.autoscale.is_some());
            let headroom = sim.headroom;
            let refresh = !sim.refresh_all;
            sim.store.configure_partitions(policy, headroom, refresh);
        }
        for _ in 0..sim.config.initial_instances {
            sim.launch_instance(SimTime::ZERO, None);
        }
        sim
    }

    /// Runs the simulation to completion and returns the measurements.
    pub fn run(mut self) -> ServingOutput {
        self.ensure_seeded();
        if self.windowed {
            self.run_windowed_until(None);
        } else {
            self.run_classic_until(None);
        }
        self.into_output()
    }

    /// Advances the simulation until the next unit of work would start at or
    /// after `until` (an event pop in classic mode; a global event or window
    /// opening in windowed mode — windows drain whole, so progress may run
    /// past `until` by up to one window). Returns the simulation time
    /// reached. Seeds the initial events on the first call; [`Self::run`]
    /// completes the run afterwards.
    ///
    /// The snapshot/fork workflow: `run_until(t)`, [`Self::snapshot`] the
    /// warm prefix, then [`Self::resume`] each fork — optionally activating
    /// a fault plan via [`Self::activate_faults`] — and `run` it to
    /// completion.
    pub fn run_until(&mut self, until: SimTime) -> SimTime {
        self.ensure_seeded();
        if self.windowed {
            self.run_windowed_until(Some(until));
        } else {
            self.run_classic_until(Some(until));
        }
        self.now
    }

    /// Captures the current state as a deterministic [`SimSnapshot`].
    ///
    /// Callable whenever the caller has control (the sim is then always
    /// between units of work). Cost: one structural deep copy — no
    /// serialization, no thread state (see [`SimSnapshot`]).
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            state: Box::new(self.clone()),
        }
    }

    /// Reconstructs an independent simulation from a snapshot. The resumed
    /// run continues byte-identically to the run the snapshot was taken
    /// from; resuming the same snapshot repeatedly forks independent runs.
    pub fn resume(snapshot: &SimSnapshot) -> ServingSim {
        (*snapshot.state).clone()
    }

    /// Activates a fault plan on a (possibly resumed) simulation whose
    /// config carried none — the forked-sweep path for sharing a fault-free
    /// warmup across fault arms.
    ///
    /// The injected `PlannedFault(0)` event takes the tie-break slot below
    /// every pending event, exactly where seeding would have put it, so a
    /// fork that activates a plan matches the cold run configured with the
    /// same plan from t = 0 — provided every planned fault fires strictly
    /// after the fork point (build plans with
    /// [`llumnix_faults::FaultPlanConfig::with_start_offset`]).
    pub fn activate_faults(&mut self, plan: FaultPlan) {
        assert!(
            self.config.fault_plan.get(0).is_none(),
            "activate_faults on a sim that already has a fault plan"
        );
        let Some(first) = plan.get(0).copied() else {
            return; // Empty plan: nothing to schedule (the "none" arm).
        };
        assert!(
            first.at >= self.now,
            "fault plan begins at {:?}, before the fork point {:?}",
            first.at,
            self.now
        );
        self.config.fault_plan = plan;
        if self.seeded {
            self.queue
                .push_below_pending(first.at, Event::PlannedFault(0));
        }
        // Not seeded yet: seed_events picks the plan up normally.
    }

    fn ensure_seeded(&mut self) {
        if self.seeded {
            return;
        }
        self.seeded = true;
        if self.trace.is_empty() {
            self.halted = true;
            return;
        }
        self.seed_events();
    }

    fn run_classic_until(&mut self, until: Option<SimTime>) {
        while !self.halted {
            let Some(t) = self.queue.peek_time() else {
                break;
            };
            if until.is_some_and(|u| t >= u) {
                break;
            }
            let (at, event) = self.queue.pop().expect("peeked above");
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            if self.now > self.config.max_sim_time {
                self.halted = true;
                break;
            }
            self.handle(event);
        }
    }

    fn seed_events(&mut self) {
        // The fault chain seeds first, before any same-instant arrival or
        // tick, so `PlannedFault(0)` holds the lowest pending sequence
        // number — the slot `activate_faults` reproduces when a fork injects
        // a plan mid-run. (A uniform seq shift of the other seeds, so their
        // relative order — and every fault-free schedule — is unchanged.)
        if let Some(first) = self.config.fault_plan.get(0) {
            // Planned faults chain like arrivals: exactly one in-queue event
            // at a time, so a long fault horizon cannot keep a drained
            // simulation alive.
            self.queue.push(first.at, Event::PlannedFault(0));
        }
        if self.windowed {
            // Pre-partitioned arrival streams (DESIGN.md §12): the trace
            // expands into K shard-local sequences once, up front. Arrivals
            // then drain inside windows like any other shard-local event and
            // reach the coordinator as barrier effects — they never touch
            // the global queue.
            for (i, r) in self.trace.requests.iter().enumerate() {
                self.store.seed_arrival(r.arrival, i, r.id);
            }
        } else {
            self.queue
                .push_coalesced(self.trace.requests[0].arrival, Event::Arrival(0));
        }
        self.queue
            .push(SimTime::ZERO + self.sample_interval, Event::Sample);
        if self.config.scheduler.uses_migration() {
            self.queue.push(
                SimTime::ZERO + self.migration_interval,
                Event::MigrationTick,
            );
        }
        for i in 0..self.config.failures.len() {
            let at = match self.config.failures[i] {
                FailureSpec::Instance { at, .. } => at,
                FailureSpec::GlobalScheduler { at, .. } => at,
            };
            self.queue.push(at, Event::Fail(i));
        }
    }

    /// The windowed main loop (DESIGN.md §10): coordinator events interleave
    /// with shard-local windows in global time order. Whenever the earliest
    /// pending work is a shard-local step completion at `t`, a window
    /// `[t, t + lookahead)` opens and every shard with work due inside it
    /// drains concurrently; cross-shard consequences buffer per shard and
    /// apply at the barrier in canonical key order. Coordinator events whose
    /// time falls inside an already-opened window run after its barrier —
    /// the coordinator → llumlet direction of the same modeled RPC latency.
    ///
    /// With `until` set, stops before the first global event or window
    /// opening at or past it (windows drain whole). Window composition —
    /// cell start, stretch, quiescence gates — is a pure function of the
    /// snapshotted state, so a stopped-and-resumed run opens the exact
    /// windows the uninterrupted run opens.
    fn run_windowed_until(&mut self, until: Option<SimTime>) {
        let k = self.store.shard_count();
        if self.pool.is_none() {
            let host_parallel =
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) > 1;
            if k > 1 && (self.force_parallel || host_parallel) {
                // K - 1 workers: the coordinator thread drains one due shard
                // itself while the workers drain the rest. Whether the pool
                // exists only changes which thread computes a drain, never
                // the drain itself; inline and pooled runs produce the same
                // bytes. Created lazily (not in `new`) so snapshots — which
                // cannot carry threads — recreate it transparently here.
                self.pool = Some(ShardPool::new(k - 1, drain_window));
            }
        }
        while !self.halted {
            let next_local = self.store.next_local_time();
            let next_global = self.queue.peek_time();
            let take_global = match (next_global, next_local) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                // Ties go to the coordinator: a global event at t can
                // schedule local work at t, never the reverse (local work's
                // cross-shard consequences ride the barrier).
                (Some(g), Some(l)) => g <= l,
            };
            if take_global {
                let g = next_global.expect("global side chosen");
                if until.is_some_and(|u| g >= u) {
                    break;
                }
                let (at, event) = self.queue.pop().expect("peeked above");
                if at > self.config.max_sim_time {
                    self.halted = true;
                    break;
                }
                // A global event inside the last window's horizon executes
                // at the barrier time, not before it (time stays monotone).
                self.now = self.now.max(at);
                self.handle(event);
            } else {
                let start = next_local.expect("local side chosen");
                if until.is_some_and(|u| start >= u) {
                    break;
                }
                if start > self.config.max_sim_time {
                    self.halted = true;
                    break;
                }
                // Windows are cells of the lookahead lattice: the window
                // containing `start` is `[cell, cell + L)`. Ending on
                // lattice points (rather than `start + L`) makes the set of
                // barrier times a run visits a subset of one fixed lattice,
                // which is what lets the autotuner merge adjacent cells
                // without moving any barrier an unstretched run would take.
                let cell = self.cell_start(start);
                let base_end = cell + self.lookahead;
                let end = self.stretched_end(cell, base_end, next_global);
                let before = self.applied.total();
                self.run_window(end);
                // Autotune cadence: effect-sparse window → double the
                // stretch; denser → reset. Pure heuristic — the quiescence
                // gates in `stretched_end` alone guarantee stretched
                // schedules are byte-identical.
                let effects = self.applied.total() - before;
                let cells = end.since(cell).as_micros() / self.lookahead.as_micros();
                self.stretch_mult = if effects <= STRETCH_EFFECT_BUDGET_PER_CELL * cells {
                    (self.stretch_mult * 2).min(MAX_STRETCH_CELLS)
                } else {
                    1
                };
            }
        }
    }

    /// Start of the lookahead-lattice cell containing `t`.
    fn cell_start(&self, t: SimTime) -> SimTime {
        let l = self.lookahead.as_micros();
        SimTime::from_micros(t.as_micros() / l * l)
    }

    /// The window end for a window opening in `[cell, base_end)`: up to
    /// [`MAX_STRETCH_CELLS`] merged lattice cells when autotuning finds the
    /// coordinator quiescent, else `base_end`.
    ///
    /// Stretching is restricted to spans whose barrier is a pure recorder —
    /// no dispatch, no termination, no centralized decision, no global
    /// event, and no migration-sensitive source step boundary before the
    /// final cell (the hazard horizon below) — so draining N cells behind
    /// one barrier applies the byte-identical effect stream the N per-cell
    /// barriers would have, and every later decision runs at the same time
    /// with the same state (DESIGN.md §12).
    fn stretched_end(
        &self,
        cell: SimTime,
        base_end: SimTime,
        next_global: Option<SimTime>,
    ) -> SimTime {
        if !self.autotune || self.stretch_mult <= 1 {
            return base_end;
        }
        // Quiescence gates — every effect class a stretched drain could emit
        // must apply independently of the barrier time:
        // - terminating instances emit `CheckTermination`, whose teardown
        //   samples a timeline at `now`;
        // - starting instances' reports flip by time alone (their partition
        //   refresh happens at the window end);
        // - centralized mode's `StepPending` grants schedule at `now`.
        if self.config.scheduler.has_central_stalls()
            || self.terminating_count != 0
            || !self.starting_queue.is_empty()
        {
            return base_end;
        }
        let mut end = cell + self.lookahead * self.stretch_mult;
        // Never swallow a coordinator event, an undispatched arrival, or the
        // simulation horizon: each must meet its own cell's barrier exactly
        // as an unstretched run would (clamping to the *cell start* keeps
        // the event's whole cell out of the stretched window).
        if let Some(g) = next_global {
            end = end.min(self.cell_start(g));
        }
        if let Some(a) = self.store.next_arrival_time() {
            end = end.min(self.cell_start(a));
        }
        end = end.min(self.cell_start(self.config.max_sim_time));
        // The migration hazard horizon. Active migrations advance from below
        // only at a *source* step boundary — the migrating request finishing,
        // being preempted, or draining all surface there, and their barrier
        // handling (abort + re-kick, `on_drained`'s commit schedule) depends
        // on the barrier time. A source engine emits nothing before its
        // in-flight step completes (new steps start only from a completion or
        // a barrier/global kick, both of which end a window), so the span may
        // run up to the *end of the cell holding the earliest source step
        // finish*: that event then meets the same barrier, at the same time,
        // as in an unstretched run. Idle sources impose no bound.
        for src in self.coordinator.source_instances() {
            let finish = self
                .store
                .get(src)
                .and_then(|l| l.engine.in_flight_finish());
            if let Some(f) = finish {
                end = end.min(self.cell_start(f) + self.lookahead);
            }
        }
        end.max(base_end)
    }

    /// Drains one conservative window across every due shard and applies the
    /// merged cross-shard effects at the barrier.
    fn run_window(&mut self, window_end: SimTime) {
        // Which shards have work due strictly before the window end is a
        // global property of the schedule (per-instance queues and times),
        // not of the partition — so window composition is shard-count
        // independent.
        let due: Vec<usize> = self
            .store
            .shard_states()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.peek_time().is_some_and(|t| t < window_end))
            .map(|(i, _)| i)
            .collect();
        let mut outboxes: Vec<(usize, WindowOutbox)> = Vec::with_capacity(due.len());
        match self.pool.as_ref() {
            Some(pool) if due.len() >= 2 => {
                let workers = pool.workers();
                let mut per_worker: Vec<Vec<usize>> = vec![Vec::new(); workers];
                for (j, &si) in due[1..].iter().enumerate() {
                    let w = j % workers;
                    let state = std::mem::take(self.store.shard_mut(si));
                    pool.dispatch(w, state, window_end);
                    per_worker[w].push(si);
                }
                outboxes.push((
                    due[0],
                    drain_window(self.store.shard_mut(due[0]), window_end),
                ));
                for (w, shards) in per_worker.iter().enumerate() {
                    for &si in shards {
                        let (state, out) = pool.collect(w);
                        *self.store.shard_mut(si) = state;
                        outboxes.push((si, out));
                    }
                }
            }
            _ => {
                for &si in &due {
                    outboxes.push((si, drain_window(self.store.shard_mut(si), window_end)));
                }
            }
        }
        let mut buffers = Vec::with_capacity(outboxes.len());
        let mut busiest = 0u64;
        let mut window_events = 0u64;
        let mut active_shards = 0u64;
        for (si, out) in outboxes {
            // Live migration handshakes handled since the last barrier ran on
            // this shard's llumlets (see `handle`): they join its serial
            // tally for this window.
            let shard_events = out.events + std::mem::take(&mut self.rpc_tally[si]);
            self.events_processed += out.events;
            self.local_events_applied += out.events;
            window_events += shard_events;
            busiest = busiest.max(shard_events);
            active_shards += 1;
            // Zero-stall observations are order-free in the summary's float
            // sum, so they fold here; nonzero stalls ride `StepPending`
            // effects and land in canonical merge order.
            for _ in 0..out.stall_zeros {
                self.stalls_acc.observe(0.0);
            }
            // Shard refreshes that saw an instance enter its startup delay:
            // queue the online re-check (set semantics — shard order and
            // duplicates are immaterial to the deadline sweep).
            for id in out.starting {
                if let Some(until) = self.store.get(id).and_then(|l| l.starting_until) {
                    self.starting_queue.push((until, id));
                }
            }
            // Mirror the shards' partition updates into the monolithic
            // cross-check index before any barrier effect can reach a
            // decision site.
            #[cfg(debug_assertions)]
            for report in &out.refreshed {
                self.index.update(report);
            }
            buffers.push(out.effects);
        }
        // A shard with no local work due can still owe handshake time from
        // the barriers since its last drain.
        for tally in &mut self.rpc_tally {
            let t = std::mem::take(tally);
            if t > 0 {
                busiest = busiest.max(t);
                window_events += t;
                active_shards += 1;
            }
        }
        // Shards drain (and run their migration handshakes) concurrently:
        // only the busiest one is on the run's serial critical path this
        // window.
        self.critical_path_events += busiest;
        self.window_stats
            .record(busiest, active_shards, window_events);
        // The barrier: time advances to the window end (cross-shard effects
        // land after the modeled RPC latency), then the merged effects apply
        // in `(time, instance, emission)` order — identical at every K.
        self.now = self.now.max(window_end);
        for (key, effect) in merge_windowed(buffers) {
            self.apply_effect(key, effect);
        }
    }

    /// Applies one merged cross-shard effect at the window barrier.
    fn apply_effect(&mut self, key: EffectKey, effect: Effect) {
        self.applied.count(&effect);
        if let Effect::Arrival(index) = effect {
            // The dispatch decision runs here, at the barrier: the frontend →
            // scheduler hop of the arrival rode the same modeled RPC as every
            // other cross-shard effect. Only arrivals needing a dispatch
            // decision reach the coordinator; their pops were shard work.
            self.arrivals_applied += 1;
            if self.arrivals_applied == self.trace.requests.len() {
                self.arrivals_done = true;
            }
            self.dispatch(index);
            return;
        }
        let id = InstanceId(u32::try_from(key.entity).expect("entity is an instance id"));
        match effect {
            Effect::Arrival(_) => unreachable!("handled above"),
            Effect::Finished(state) => self.apply_finished(state),
            Effect::Engine(ev) => self.route_engine_event(id, ev),
            Effect::HighBatch(batch) => self.high_batch_acc.observe(batch),
            Effect::StepPending { tracked, finish } => {
                // The central scheduler serves decision requests in canonical
                // key order; its FIFO `free_at` carries queueing across
                // windows, so decisions keep their poll-time spacing even
                // though they are granted at the barrier.
                let stall = self.central.request_decision(key.at, tracked);
                self.stalls_acc.observe(stall.as_secs_f64());
                let mut finish = finish + stall;
                if let Some(factor) = self.store.slow_factor(id, key.at) {
                    finish = key.at + finish.since(key.at).mul_f64(factor);
                }
                if self.store.contains(id) {
                    // The grant reaches the llumlet no earlier than the
                    // barrier (it rode the modeled RPC back): never schedule
                    // into the already-drained window.
                    self.store.push_local(id, finish.max(self.now));
                }
            }
            Effect::CheckTermination => self.maybe_finish_termination(id),
        }
    }

    fn into_output(self) -> ServingOutput {
        let mut critical_path_events = self.critical_path_events;
        if self.windowed {
            // Handshake work attributed after the last window closed (tail
            // commits): the endpoint shards still execute it concurrently,
            // so only the busiest tally joins the critical path. Folded here
            // — the true end of the run — rather than in the windowed loop,
            // which `run_until` may enter many times.
            critical_path_events += self.rpc_tally.iter().copied().max().unwrap_or(0);
            // Barrier-teardown reconciliation (the sharded honest-accounting
            // guard): the partition must be structurally sound and every
            // effect the shards emitted must have been applied by the
            // coordinator — the same ledger discipline the single-threaded
            // run gets from executing everything in one place.
            self.store.check_consistency();
            assert_eq!(
                self.store.emitted_totals(),
                self.applied,
                "cross-shard effect ledgers must reconcile at teardown"
            );
            assert_eq!(
                self.store.local_events_total(),
                self.local_events_applied,
                "shard-local event counts must reconcile at teardown"
            );
            assert!(
                self.fault_stats.consistent(),
                "fault ledger inconsistent at shutdown: {:?}",
                self.fault_stats
            );
        }
        // No leaked blocks: every surviving engine's per-request block ledger
        // must still reconcile with its allocator, crashes and aborts
        // included. Cheap (one pass per engine, once per run), so it is a
        // hard assert rather than debug-only.
        for (id, l) in self.store.iter() {
            assert!(
                l.engine.check_invariants(),
                "engine {id:?} block ledger inconsistent at shutdown"
            );
        }
        let mut fault_stats = self.fault_stats;
        fault_stats.recovery_latency = self.recovery_acc.finish();
        let avg_instances = self.instances_ts.time_weighted_mean();
        ServingOutput {
            scheduler: self.config.scheduler,
            records: self.records,
            aborted: self.aborted,
            fragmentation: self.fragmentation,
            free_blocks: self.free_blocks,
            hol_satisfiable: self.hol_satisfiable,
            queued: self.queued,
            instances: self.instances_ts,
            avg_instances,
            migration_stats: *self.coordinator.stats(),
            stalls: self.stalls_acc.finish(),
            high_step_batches: self.high_batch_acc.finish(),
            makespan: self.makespan,
            events_processed: self.events_processed,
            critical_path_events,
            window_stats: self.window_stats,
            fault_stats,
        }
    }

    // ---- event handling ----------------------------------------------------

    fn handle(&mut self, event: Event) {
        self.events_processed += 1;
        // Coordinator events are inherently serial; in classic mode this
        // makes the critical path equal to `events_processed`. One class is
        // charged differently in windowed runs: a *live* migration stage or
        // commit is the paper's Figure 7 handshake, executed pairwise by the
        // source and destination llumlets — the global scheduler only
        // initiates migrations, it does not relay their copies. Such an
        // event's cost lands on both endpoint shards' tallies and rides the
        // busiest-shard bound of the next window (`run_window`); only stale
        // events, whose migration is already gone, stay coordinator
        // bookkeeping.
        let mut shard_charged = false;
        if self.windowed {
            if let Event::MigrationStage(mid) | Event::MigrationCommit(mid) = &event {
                if let Some((src, dst)) = self.coordinator.endpoints(*mid) {
                    let (a, b) = (self.store.shard_of(src), self.store.shard_of(dst));
                    self.rpc_tally[a] += 1;
                    if b != a {
                        self.rpc_tally[b] += 1;
                    }
                    shard_charged = true;
                }
            }
        }
        if !shard_charged {
            self.critical_path_events += 1;
        }
        match event {
            Event::Arrival(i) => self.on_arrival(i),
            Event::StepDone(id) => self.on_step_done(id),
            Event::MigrationStage(mid) => self.on_migration_stage(mid),
            Event::MigrationCommit(mid) => self.on_migration_commit(mid),
            Event::MigrationTick => self.on_migration_tick(),
            Event::Sample => self.on_sample(),
            Event::Fail(i) => self.on_failure(i),
            Event::PlannedFault(i) => self.on_planned_fault(i),
            Event::GlobalRecover => {
                self.global_down = false;
            }
            Event::InstanceRestart => {
                self.launch_instance(self.now, None);
            }
        }
    }

    fn on_arrival(&mut self, index: usize) {
        if index + 1 < self.trace.requests.len() {
            // High-rate open-loop traces duplicate timestamps at large fleet
            // sizes; arrivals ride the same calendar buckets as step
            // completions (DESIGN.md §7.4).
            let next = self
                .trace
                .requests
                .get(index + 1)
                .expect("bounds-checked above");
            self.queue
                .push_coalesced(next.arrival, Event::Arrival(index + 1));
        } else {
            self.arrivals_done = true;
        }
        self.dispatch(index);
    }

    /// Selects a dispatch target off the incremental index (after refreshing
    /// it), falling back to scheduler-bypass round-robin while the global
    /// scheduler is down (§5). Debug builds cross-check the index's choice
    /// against a from-scratch rescan of fresh reports.
    fn dispatch_target(&mut self, high: bool) -> Option<InstanceId> {
        self.refresh_fleet();
        #[cfg(debug_assertions)]
        let expected = {
            // Clones so the comparison dispatch does not advance the real
            // round-robin counters.
            let reports = self.reports();
            if self.global_down {
                self.bypass_dispatcher
                    .clone()
                    .dispatch(SchedulerKind::RoundRobin, &reports)
            } else {
                self.dispatcher
                    .clone()
                    .dispatch_for(self.config.scheduler, &reports, high)
            }
        };
        // The merged-view comparison must also run on pre-advance clones:
        // the real dispatch below moves the round-robin counter.
        #[cfg(debug_assertions)]
        let monolithic = self.windowed.then(|| {
            if self.global_down {
                self.bypass_dispatcher.clone().dispatch_indexed(
                    SchedulerKind::RoundRobin,
                    &self.index,
                    false,
                )
            } else {
                self.dispatcher
                    .clone()
                    .dispatch_indexed(self.config.scheduler, &self.index, high)
            }
        });
        let target = if self.windowed {
            // Windowed mode reads the canonical k-way merge over the shard
            // partitions; the monolithic index is debug-only.
            let view = self.store.merged_index();
            if self.global_down {
                self.bypass_dispatcher
                    .dispatch_indexed(SchedulerKind::RoundRobin, &view, false)
            } else {
                self.dispatcher
                    .dispatch_indexed(self.config.scheduler, &view, high)
            }
        } else if self.global_down {
            // Scheduler-bypass mode (§5): frontends use a simple round-robin
            // rule directly.
            self.bypass_dispatcher
                .dispatch_indexed(SchedulerKind::RoundRobin, &self.index, false)
        } else {
            self.dispatcher
                .dispatch_indexed(self.config.scheduler, &self.index, high)
        };
        #[cfg(debug_assertions)]
        {
            debug_assert_eq!(target, expected, "index diverged from rescan");
            if let Some(monolithic) = monolithic {
                debug_assert_eq!(
                    target, monolithic,
                    "merged partition view diverged from monolithic index"
                );
            }
        }
        target
    }

    fn dispatch(&mut self, index: usize) {
        let r = self.trace.requests[index];
        let high = self.config.scheduler.uses_priorities() && r.high_priority;
        let Some(target) = self.dispatch_target(high) else {
            self.undispatched.push_back(index);
            return;
        };
        let priority = if high {
            PriorityPair::HIGH
        } else {
            PriorityPair::NORMAL
        };
        let meta = RequestMeta {
            id: RequestId(r.id),
            input_len: r.input_len,
            output_len: r.output_len,
            priority,
            arrival: r.arrival,
        };
        let llumlet = self.store.get_mut(target).expect("dispatch target");
        llumlet.engine.add_request(meta, self.now);
        self.kick(target);
    }

    fn on_step_done(&mut self, id: InstanceId) {
        let Some(llumlet) = self.store.get_mut(id) else {
            return; // Instance failed mid-step.
        };
        let events = llumlet.engine.complete_step(self.now);
        self.collect_finished(id);
        self.route_engine_events(id, events);
        self.kick(id);
    }

    fn route_engine_events(&mut self, id: InstanceId, events: Vec<EngineEvent>) {
        for ev in events {
            self.route_engine_event(id, ev);
        }
    }

    fn route_engine_event(&mut self, id: InstanceId, ev: EngineEvent) {
        match ev {
            EngineEvent::FirstToken(_) => {}
            EngineEvent::Finished(req) => {
                self.abort_migration_of(req, AbortReason::RequestFinished);
            }
            EngineEvent::Preempted(req) => {
                self.abort_migration_of(req, AbortReason::RequestPreempted);
            }
            EngineEvent::Drained(req) => {
                // A barrier-delivered drain can trail instance teardown; a
                // gone instance means its migration already aborted with it
                // (impossible in the classic loop, where the drain routes in
                // the same event that produced it).
                let Some(llumlet) = self.store.get_mut(id) else {
                    return;
                };
                match self
                    .coordinator
                    .on_drained(req, &mut llumlet.engine, self.now)
                {
                    Some((mid, commit_at)) => {
                        self.queue.push(commit_at, Event::MigrationCommit(mid));
                    }
                    None => {
                        // The migration that requested this drain was
                        // aborted in the meantime; resume the request.
                        llumlet.engine.undrain(req);
                    }
                }
            }
            EngineEvent::Aborted(_) => {
                self.aborted += 1;
            }
        }
    }

    fn on_migration_stage(&mut self, mid: MigrationId) {
        let Some((src, dst)) = self.coordinator.endpoints(mid) else {
            return; // Aborted earlier; stale event.
        };
        let impaired = self.link_impaired(src) || self.link_impaired(dst);
        let Some((se, de)) = self.store.two_engines(src, dst) else {
            return;
        };
        if impaired {
            // The copy for this stage cannot complete over a dead link:
            // abort at the stage boundary. (A commit whose final copy
            // already finished still lands — only in-flight copies die.)
            self.coordinator.abort(mid, se, de, AbortReason::LinkFailed);
            self.fault_stats.aborts_link_failed += 1;
            self.kick(dst);
            self.kick(src);
            self.continue_pair(src);
            return;
        }
        let outcome = self.coordinator.on_stage_done(mid, se, de, self.now);
        match outcome {
            Some(StageOutcome::NextStage { copy_done_at }) => {
                self.queue.push(copy_done_at, Event::MigrationStage(mid));
            }
            Some(StageOutcome::FinalCopy { commit_at }) => {
                self.queue.push(commit_at, Event::MigrationCommit(mid));
            }
            Some(StageOutcome::DrainRequested) | None => {}
            Some(StageOutcome::Aborted(_)) => {
                // Space may have been released on the destination.
                self.kick(dst);
                self.kick(src);
                self.continue_pair(src);
            }
        }
    }

    fn on_migration_commit(&mut self, mid: MigrationId) {
        let Some((src, dst)) = self.coordinator.endpoints(mid) else {
            return;
        };
        let Some((se, de)) = self.store.two_engines(src, dst) else {
            return;
        };
        match self.coordinator.on_commit(mid, se, de, self.now) {
            CommitResult::Committed(_) => {
                self.kick(dst);
                self.kick(src);
                self.continue_pair(src);
                self.maybe_finish_termination(src);
                self.maybe_finish_termination(dst);
            }
            CommitResult::AbortedAtCommit(_) => {
                // The reservation was released on the destination; the source
                // keeps (or already finished) the request.
                self.kick(dst);
                self.kick(src);
                self.continue_pair(src);
            }
            CommitResult::Stale => {}
        }
    }

    fn on_migration_tick(&mut self) {
        if !self.global_down {
            self.refresh_fleet();
            let pairs = if self.windowed {
                self.store
                    .merged_index()
                    .pair(self.config.migration_thresholds)
            } else {
                self.index.pair(self.config.migration_thresholds)
            };
            #[cfg(debug_assertions)]
            {
                debug_assert_eq!(
                    pairs,
                    crate::policy::pair_migrations(
                        &self.reports(),
                        self.config.migration_thresholds
                    ),
                    "index pairing diverged from rescan"
                );
                if self.windowed {
                    debug_assert_eq!(
                        pairs,
                        self.index.pair(self.config.migration_thresholds),
                        "merged partition pairing diverged from monolithic index"
                    );
                }
            }
            self.pairs = pairs.into_iter().collect();
            let sources: Vec<InstanceId> = self.pairs.keys().copied().collect();
            for src in sources {
                self.continue_pair(src);
            }
        }
        if !self.finished_serving() {
            self.queue
                .push(self.now + self.migration_interval, Event::MigrationTick);
        }
    }

    /// Starts the next migration from `src` if its pair is set and it has no
    /// migration in flight (llumlets migrate continuously, one at a time).
    fn continue_pair(&mut self, src: InstanceId) {
        let Some(&dst) = self.pairs.get(&src) else {
            return;
        };
        if self.coordinator.is_migration_source(src) {
            return;
        }
        if self.link_impaired(src) || self.link_impaired(dst) {
            // No new migrations over a downed link; the pairing tick retries
            // once the outage expires.
            return;
        }
        let Some(llumlet) = self.store.get(src) else {
            return;
        };
        let coordinator = &self.coordinator;
        let Some(victim) = llumlet.select_migration_victim_with(self.config.victim_policy, |id| {
            coordinator.is_migrating(id)
        }) else {
            return;
        };
        let Some((se, de)) = self.store.two_engines(src, dst) else {
            return;
        };
        match self.coordinator.start(victim, se, de, self.now) {
            StartOutcome::Started { id, stage_done_at } => {
                self.queue.push(stage_done_at, Event::MigrationStage(id));
            }
            StartOutcome::Refused(_) => {}
        }
    }

    fn on_sample(&mut self) {
        // Expired fault effects cost a map probe per kick; drop them here so
        // the maps stay proportional to the *active* fault set.
        let now = self.now;
        self.store.slow_retain(now);
        self.link_down_until.retain(|_, &mut until| until > now);
        self.sample_timelines();
        self.autoscale();
        self.retry_undispatched();
        // Safety net: kick everything (cheap at the sampling rate). Kicks can
        // remove instances from `self.order` (termination), so iterate a
        // snapshot — taken into a persistent scratch buffer rather than a
        // fresh clone per sample.
        let mut snapshot = std::mem::take(&mut self.order_scratch);
        snapshot.clear();
        snapshot.extend_from_slice(self.store.order());
        for &id in &snapshot {
            self.kick(id);
        }
        self.order_scratch = snapshot;
        if !self.finished_serving() {
            self.queue
                .push(self.now + self.sample_interval, Event::Sample);
        }
    }

    fn on_failure(&mut self, index: usize) {
        match self.config.failures[index] {
            FailureSpec::Instance {
                instance,
                restart_after,
                ..
            } => {
                self.fail_instance(instance);
                if let Some(delay) = restart_after {
                    self.queue.push(self.now + delay, Event::InstanceRestart);
                }
            }
            FailureSpec::GlobalScheduler { duration, .. } => {
                self.global_down = true;
                self.queue.push(self.now + duration, Event::GlobalRecover);
            }
        }
    }

    fn fail_instance(&mut self, id: InstanceId) {
        if !self.store.contains(id) {
            return;
        }
        // Requests resident on or queued at the failed instance abort (§5);
        // a request mid-migration *out of* it dies with it too, while one
        // migrating *into* it survives on its still-healthy source.
        let lost = self.teardown_failed_instance(id);
        self.aborted += lost.len() as u64;
        self.sample_instances();
    }

    // ---- fault injection ---------------------------------------------------

    fn on_planned_fault(&mut self, i: usize) {
        if self.finished_serving() {
            // The trace has drained: faults on an idle fleet are moot, and
            // not re-arming here lets the event queue drain normally.
            return;
        }
        if let Some(next) = self.config.fault_plan.get(i + 1) {
            self.queue.push(next.at, Event::PlannedFault(i + 1));
        }
        let fault = *self.config.fault_plan.get(i).expect("plan index in range");
        let Some(target) = self.fault_target(fault.target_rank) else {
            return;
        };
        match fault.kind {
            FaultKind::Crash { restart_after } => {
                if self.store.len() <= 1 {
                    // Never crash the last instance: the fleet must be able
                    // to make progress. Counted so benches can reconcile.
                    self.fault_stats.crashes_skipped += 1;
                    return;
                }
                self.fault_stats.crashes += 1;
                self.crash_instance(target);
                if let Some(delay) = restart_after {
                    self.queue.push(self.now + delay, Event::InstanceRestart);
                }
            }
            FaultKind::Slowdown { factor, duration } => {
                self.fault_stats.slowdowns += 1;
                // Overlapping slowdowns: keep the later expiry and the worse
                // factor.
                self.store.slow_apply(target, self.now + duration, factor);
            }
            FaultKind::LinkFailure { duration } => {
                self.fault_stats.link_failures += 1;
                let until = self.now + duration;
                let entry = self.link_down_until.entry(target).or_insert(SimTime::ZERO);
                *entry = (*entry).max(until);
            }
        }
    }

    /// Resolves a planned fault's abstract rank against the live roster:
    /// insertion-order walk, modulo the current fleet size. Keeps the plan
    /// itself fleet-agnostic while the pick stays fully deterministic.
    fn fault_target(&self, rank: u64) -> Option<InstanceId> {
        let order = self.store.order();
        if order.is_empty() {
            return None;
        }
        Some(order[(rank % order.len() as u64) as usize])
    }

    /// True while `id`'s migration link is down.
    fn link_impaired(&self, id: InstanceId) -> bool {
        self.link_down_until
            .get(&id)
            .is_some_and(|&until| self.now < until)
    }

    /// Kills `id` as a planned crash. Unlike the scripted [`FailureSpec`]
    /// abort semantics, the requests the instance held are re-dispatched
    /// through the main dispatcher — same round-robin state and
    /// priority-class routing as a fresh arrival, against freshly recomputed
    /// virtual usage — and only abort if no dispatch target exists.
    fn crash_instance(&mut self, id: InstanceId) {
        let metas = self.teardown_failed_instance(id);
        self.fault_stats.requests_lost += metas.len() as u64;
        for meta in metas {
            self.crash_lost_at.insert(meta.id.0, self.now);
            if self.redispatch(meta) {
                self.fault_stats.requests_redispatched += 1;
            } else {
                self.fault_stats.requests_lost_aborted += 1;
                self.crash_lost_at.remove(&meta.id.0);
            }
        }
        self.sample_instances();
    }

    /// Shared dead-instance teardown: aborts in-flight migrations touching
    /// `id` via the Figure 7 failure paths (counting each abort reason),
    /// evicts it from the dispatch index, the pairing table, and the fault
    /// maps, and returns the metas of every request it held — running batch,
    /// pending prefills, queue, and draining set — in the engine's
    /// deterministic roster order.
    fn teardown_failed_instance(&mut self, id: InstanceId) -> Vec<RequestMeta> {
        let mut peers = self.store.peers_mut(id);
        let aborted_migrations = self.coordinator.abort_for_failed_instance(id, &mut peers);
        drop(peers);
        for (_, _, reason) in &aborted_migrations {
            match reason {
                AbortReason::SourceFailed => self.fault_stats.aborts_source_failed += 1,
                AbortReason::DestinationFailed => self.fault_stats.aborts_destination_failed += 1,
                _ => {}
            }
        }
        let llumlet = self.store.remove(id).expect("teardown of live instance");
        if llumlet.terminating {
            self.terminating_count -= 1;
        }
        self.index.remove(id);
        self.pairs.remove(&id);
        self.pairs.retain(|_, d| *d != id);
        self.store.slow_remove(id);
        self.link_down_until.remove(&id);
        llumlet
            .engine
            .tracked_ids()
            .iter()
            .map(|&rid| {
                llumlet
                    .engine
                    .state(rid)
                    .expect("tracked id has state")
                    .meta
            })
            .collect()
    }

    // ---- helpers -----------------------------------------------------------

    fn launch_instance(&mut self, now: SimTime, startup: Option<SimDuration>) -> InstanceId {
        let id = InstanceId(self.next_instance);
        self.next_instance += 1;
        let engine = InstanceEngine::new(id, self.config.spec.clone(), self.config.engine.clone());
        let starting_until = startup.map(|d| now + d);
        if let Some(until) = starting_until {
            // Queue the online re-check immediately (not when a refresh
            // first observes `became_starting`): the autotuner's quiescence
            // gate reads this queue, so it must cover a starting instance
            // from the moment it exists. The refresh's own push (if any)
            // just duplicates the entry, which the deadline sweep tolerates.
            self.starting_queue.push((until, id));
        }
        // `insert` marks the instance dirty, so the next refresh indexes it.
        self.store
            .insert(id, Llumlet::new(engine, now, starting_until));
        self.sample_instances();
        id
    }

    /// Brings the dispatch index up to date with every instance that could
    /// have changed since the last decision: the store's dirty set (every
    /// mutable access marks), plus starting instances whose startup deadline
    /// passed (a time-driven transition no engine event covers). Reports are
    /// version-cached per llumlet, so over-marking costs a cache probe, not
    /// a recompute.
    fn refresh_fleet(&mut self) {
        let mut i = 0;
        while i < self.starting_queue.len() {
            if self.starting_queue[i].0 <= self.now {
                let (_, id) = self.starting_queue.swap_remove(i);
                let _ = self.store.get_mut(id); // marks dirty if still live
            } else {
                i += 1;
            }
        }
        if self.refresh_all {
            for i in 0..self.store.order().len() {
                let id = self.store.order()[i];
                let _ = self.store.get_mut(id);
            }
        }
        let mut dirty = std::mem::take(&mut self.dirty_scratch);
        self.store.take_dirty(&mut dirty);
        for &id in &dirty {
            let Some(l) = self.store.get(id) else {
                // Removed after being marked; drop any stale entry. (In
                // release windowed builds the monolithic index is empty and
                // this is a no-op; the partition entry was dropped by
                // `ShardedFleet::remove`.)
                self.index.remove(id);
                continue;
            };
            let report = l.report(self.now, &self.headroom);
            let until = l.starting_until;
            // Windowed mode indexes into the shard partitions (bulk-refreshed
            // inside `drain_window`; this residual pass covers instances the
            // coordinator itself dirtied since the barrier). The monolithic
            // index is then maintained only in debug builds, as the
            // cross-check reference.
            let became_starting = if self.windowed {
                #[cfg(debug_assertions)]
                self.index.update(&report);
                self.store.partition_update(&report).became_starting
            } else {
                self.index.update(&report).became_starting
            };
            if became_starting {
                self.starting_queue
                    .push((until.expect("starting implies deadline"), id));
            }
        }
        self.dirty_scratch = dirty;
        // No-op when the monolithic index saw no membership change (always
        // true in release windowed builds).
        self.index.sync_order(self.store.order());
    }

    /// From-scratch load reports in fleet order — the rescan the index
    /// replaces, kept as the debug-build reference for the equivalence
    /// asserts.
    #[cfg(debug_assertions)]
    fn reports(&self) -> Vec<crate::policy::LoadReport> {
        self.store
            .iter()
            .map(|(_, l)| l.report(self.now, &self.headroom))
            .collect()
    }

    /// Polls an instance for its next step and schedules its completion.
    fn kick(&mut self, id: InstanceId) {
        let Some(llumlet) = self.store.get_mut(id) else {
            return;
        };
        if llumlet.is_starting(self.now) {
            return;
        }
        if let Some(plan) = llumlet.engine.poll_step(self.now) {
            if let llumnix_engine::StepKind::Decode(ids) = &plan.kind {
                let has_high = ids.iter().any(|r| {
                    llumlet.engine.state(*r).is_some_and(|s| {
                        s.meta.priority.execution == llumnix_engine::Priority::High
                    })
                });
                if has_high {
                    self.high_batch_acc.observe(ids.len() as f64);
                }
            }
            let mut finish = plan.finish_at();
            if self.config.scheduler.has_central_stalls() {
                let tracked = llumlet.engine.batch_size() + llumlet.engine.waiting_len();
                let stall = self.central.request_decision(self.now, tracked);
                self.stalls_acc.observe(stall.as_secs_f64());
                finish += stall;
            } else {
                self.stalls_acc.observe(0.0);
            }
            // A straggling instance stretches its whole step (compute and
            // any stall) by the slowdown factor until the fault expires.
            if let Some(factor) = self.store.slow_factor(id, self.now) {
                finish = self.now + finish.since(self.now).mul_f64(factor);
            }
            // Step completions dominate the event volume and pile up on the
            // same microsecond in large fleets; route them through the
            // calendar tier so same-time completions share one bucket (the
            // owning shard's queue in windowed mode, the global queue
            // otherwise).
            if self.windowed {
                self.store.push_local(id, finish);
            } else {
                self.queue.push_coalesced(finish, Event::StepDone(id));
            }
        }
        let pending = self
            .store
            .get_mut(id)
            .expect("still present")
            .engine
            .take_pending_events();
        if !pending.is_empty() {
            self.route_engine_events(id, pending);
        }
        self.collect_finished(id);
    }

    fn collect_finished(&mut self, id: InstanceId) {
        let Some(llumlet) = self.store.get_mut(id) else {
            return;
        };
        let finished = llumlet.engine.take_finished();
        for state in finished {
            self.apply_finished(state);
        }
        self.maybe_finish_termination(id);
    }

    /// Records one finished request — shared by the classic collection path
    /// and the barrier's `Finished` effects.
    fn apply_finished(&mut self, state: SeqState) {
        if state.aborted {
            // Counted via the Aborted event; no latency record.
            return;
        }
        debug_assert!(state.first_token_at.is_some(), "completed without prefill");
        if let Some(lost_at) = self.crash_lost_at.remove(&state.meta.id.0) {
            // Recovery latency: from the crash that lost the request to
            // its first token after redispatch (fresh queueing+prefill).
            let first = state.first_token_at.expect("checked above");
            self.recovery_acc
                .observe(first.since(lost_at).as_secs_f64());
        }
        let record = self.to_record(&state);
        self.makespan = self.makespan.max(state.finished_at.unwrap_or(self.now));
        self.records.push(record);
    }

    fn to_record(&self, s: &SeqState) -> RequestRecord {
        let priority = if self.high_ids.contains(&s.meta.id.0) {
            RecordPriority::High
        } else {
            RecordPriority::Normal
        };
        RequestRecord {
            id: s.meta.id.0,
            priority,
            input_len: s.meta.input_len,
            output_len: s.generated,
            arrival: s.meta.arrival,
            first_token: s.first_token_at.expect("completed request"),
            finish: s.finished_at.expect("completed request"),
            preemptions: s.preemptions,
            preemption_loss: s.preemption_loss,
            migrations: s.migrations,
            migration_downtime: s.migration_downtime,
            decode_compute: s.decode_compute,
            max_token_gap: s.max_token_gap,
        }
    }

    fn abort_migration_of(&mut self, req: RequestId, reason: AbortReason) {
        let Some((mid, src, dst)) = self.coordinator.lookup_by_request(req) else {
            return;
        };
        if let Some((se, de)) = self.store.two_engines(src, dst) {
            self.coordinator.abort(mid, se, de, reason);
            self.kick(dst);
        }
    }

    // ---- sampling & scaling -------------------------------------------------

    fn sample_instances(&mut self) {
        self.instances_ts.push(self.now, self.store.len() as f64);
    }

    fn sample_timelines(&mut self) {
        let total_free: u64 = self
            .store
            .iter()
            .map(|(_, l)| l.engine.free_blocks() as u64)
            .sum();
        let total_blocks: u64 = self
            .store
            .iter()
            .map(|(_, l)| l.engine.total_blocks() as u64)
            .sum();
        let mut hol: Vec<u64> = self
            .store
            .iter()
            .filter_map(|(_, l)| {
                l.engine
                    .head_of_line_demand()
                    .map(|(_, blocks)| blocks as u64)
            })
            .collect();
        hol.sort_unstable();
        // Figure 12's fragmented-memory definition: free memory that could
        // satisfy head-of-line blocked requests if it were not fragmented.
        let mut satisfiable = 0u64;
        let mut fragmented = 0u64;
        let mut budget = total_free;
        for demand in &hol {
            if *demand <= budget {
                satisfiable += 1;
                fragmented += demand;
                budget -= demand;
            } else {
                break;
            }
        }
        let frag_prop = if total_blocks == 0 {
            0.0
        } else {
            fragmented as f64 / total_blocks as f64
        };
        let queued: usize = self.store.iter().map(|(_, l)| l.engine.waiting_len()).sum();
        self.fragmentation.push(self.now, frag_prop);
        self.free_blocks.push(self.now, total_free as f64);
        self.hol_satisfiable.push(self.now, satisfiable as f64);
        self.queued.push(self.now, queued as f64);
        self.sample_instances();
    }

    fn autoscale(&mut self) {
        if self.scaler.is_none() || self.global_down {
            return;
        }
        let headroom = self.headroom;
        let scaler = self.scaler.as_mut().expect("checked above");
        let serving: Vec<&Llumlet> = self
            .store
            .iter()
            .map(|(_, l)| l)
            .filter(|l| !l.terminating && !l.is_starting(self.now))
            .collect();
        if serving.is_empty() {
            return;
        }
        let use_infaas = matches!(self.config.scheduler, SchedulerKind::InfaasPlusPlus);
        // Clamp each instance's contribution so one near-empty instance
        // (freeness = full capacity) cannot mask overload elsewhere.
        let cap = scaler.config().freeness_high * 3.0;
        let avg: f64 = serving
            .iter()
            .map(|l| {
                let f = if use_infaas {
                    crate::virtual_usage::infaas_equivalent_freeness(&l.engine)
                } else {
                    crate::virtual_usage::engine_freeness(&l.engine, false, self.now, &headroom)
                };
                f.min(cap)
            })
            .sum::<f64>()
            / serving.len() as f64;
        // Alive bounds scale-up (all paid capacity, draining included);
        // active bounds scale-down (capacity not already being drained).
        let alive = self.store.len() as u32;
        let active = self.store.iter().filter(|(_, l)| !l.terminating).count() as u32;
        match scaler.observe_counts(avg, alive, active, self.now) {
            Some(ScaleAction::Up) => {
                let delay = scaler.config().startup_delay;
                self.launch_instance(self.now, Some(delay));
            }
            Some(ScaleAction::Down) => self.begin_termination(),
            None => {}
        }
    }

    fn begin_termination(&mut self) {
        // Terminate the serving instance with the fewest running requests.
        self.refresh_fleet();
        let candidate = if self.windowed {
            self.store.merged_index().drain_victim()
        } else {
            self.index.drain_victim()
        };
        #[cfg(debug_assertions)]
        {
            let expected = self
                .store
                .iter()
                .filter(|(_, l)| !l.terminating && !l.is_starting(self.now))
                .min_by_key(|&(id, l)| (l.engine.batch_size(), id))
                .map(|(id, _)| id);
            debug_assert_eq!(candidate, expected, "index victim diverged from rescan");
            if self.windowed {
                debug_assert_eq!(
                    candidate,
                    self.index.drain_victim(),
                    "merged partition victim diverged from monolithic index"
                );
            }
        }
        let Some(id) = candidate else {
            return;
        };
        let llumlet = self.store.get_mut(id).expect("candidate");
        llumlet.terminating = true;
        self.terminating_count += 1;
        // Re-dispatch its queued requests; migration handles the running ones
        // (the fake ∞ request makes it a permanent migration source).
        let waiting = llumlet.engine.waiting_ids();
        let mut metas = Vec::new();
        for w in waiting {
            if let Some(state) = llumlet.engine.abort_request(w) {
                metas.push(state.meta);
            }
        }
        for meta in metas {
            self.redispatch(meta);
        }
        self.maybe_finish_termination(id);
    }

    /// Re-dispatches a request aborted off a terminating or crashed instance
    /// through the sim's main dispatcher — same round-robin state, same
    /// priority-class routing rule as a fresh arrival of that request.
    /// Returns whether a dispatch target existed.
    fn redispatch(&mut self, meta: RequestMeta) -> bool {
        let high = self.config.scheduler.uses_priorities() && self.high_ids.contains(&meta.id.0);
        if let Some(target) = self.dispatch_target(high) {
            self.store
                .get_mut(target)
                .expect("target")
                .engine
                .add_request(meta, self.now);
            self.kick(target);
            true
        } else {
            // No instance available: treat as aborted.
            self.aborted += 1;
            false
        }
    }

    /// Removes a terminating instance once it is fully drained and no
    /// migration still touches it.
    fn maybe_finish_termination(&mut self, id: InstanceId) {
        let Some(llumlet) = self.store.get(id) else {
            return;
        };
        if !llumlet.terminating || !llumlet.is_drained() || llumlet.engine.step_in_flight() {
            return;
        }
        if self.coordinator.touches(id) {
            // Wait for in-flight migrations (out of *or into* this
            // instance) to settle; commits re-check via this function.
            return;
        }
        // Never drop the last instance.
        if self.store.len() <= 1 {
            return;
        }
        self.store.remove(id);
        self.terminating_count -= 1;
        self.index.remove(id);
        self.pairs.remove(&id);
        self.pairs.retain(|_, d| *d != id);
        self.sample_instances();
    }

    fn retry_undispatched(&mut self) {
        let pending: Vec<usize> = self.undispatched.drain(..).collect();
        for index in pending {
            self.dispatch(index);
        }
    }

    fn finished_serving(&self) -> bool {
        self.arrivals_done
            && self.undispatched.is_empty()
            && self.coordinator.active_count() == 0
            && self.store.iter().all(|(_, l)| {
                let e = &l.engine;
                !e.has_work() && !e.step_in_flight()
            })
    }
}

/// The headroom config a run actually schedules with: the configured one for
/// priority-aware schedulers, otherwise priority headroom off with the
/// (priority-independent) queuing-demand rule preserved. Constant per run.
fn effective_headroom(config: &ServingConfig) -> HeadroomConfig {
    if config.scheduler.uses_priorities() {
        config.headroom
    } else {
        HeadroomConfig::DISABLED.with_queuing_rule(config.headroom.queuing_rule)
    }
}

/// Convenience: builds and runs a simulation.
pub fn run_serving(config: ServingConfig, trace: Trace) -> ServingOutput {
    ServingSim::new(config, trace).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use llumnix_sim::SimRng;
    use llumnix_workload::{presets, Arrivals};

    fn tiny_trace(n: usize, rate: f64, seed: u64) -> Trace {
        // Capped so every request fits the 2048-token test instances: no
        // admission-impossible aborts unless a test injects failures.
        let spec = presets::by_name("S-S", n, Arrivals::poisson(rate))
            .expect("preset")
            .with_max_total_tokens(2_000);
        spec.generate(&SimRng::new(seed))
    }

    fn tiny_config(kind: SchedulerKind, instances: u32) -> ServingConfig {
        ServingConfig::new(kind, instances).with_spec(InstanceSpec::tiny_for_tests(2048))
    }

    fn assert_all_complete(trace_len: usize, out: &ServingOutput) {
        assert_eq!(
            out.records.len() as u64 + out.aborted,
            trace_len as u64,
            "every request completes exactly once ({} records, {} aborted)",
            out.records.len(),
            out.aborted
        );
        let mut ids: Vec<u64> = out.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), out.records.len(), "no duplicate completions");
        for r in &out.records {
            assert!(r.finish >= r.first_token);
            assert!(r.first_token >= r.arrival);
            assert!(r.output_len >= 1);
        }
    }

    #[test]
    fn round_robin_serves_small_trace() {
        let trace = tiny_trace(120, 4.0, 1);
        let out = run_serving(tiny_config(SchedulerKind::RoundRobin, 4), trace.clone());
        assert_all_complete(trace.len(), &out);
        assert_eq!(out.migration_stats.started, 0, "round-robin never migrates");
    }

    #[test]
    fn llumnix_serves_and_migrates_under_pressure() {
        // High rate on few tiny instances forces queue pressure and thus
        // de-fragmentation / load-balancing migrations.
        let trace = tiny_trace(300, 8.0, 2);
        let out = run_serving(tiny_config(SchedulerKind::Llumnix, 4), trace.clone());
        assert_all_complete(trace.len(), &out);
        assert!(
            out.migration_stats.started > 0,
            "expected migrations under pressure"
        );
        assert!(out.migration_stats.committed <= out.migration_stats.started);
    }

    #[test]
    fn infaas_serves_small_trace() {
        let trace = tiny_trace(120, 4.0, 3);
        let out = run_serving(tiny_config(SchedulerKind::InfaasPlusPlus, 4), trace.clone());
        assert_all_complete(trace.len(), &out);
        assert_eq!(out.migration_stats.started, 0);
    }

    #[test]
    fn centralized_accumulates_stalls() {
        let trace = tiny_trace(200, 10.0, 4);
        let out = run_serving(tiny_config(SchedulerKind::Centralized, 8), trace.clone());
        assert_all_complete(trace.len(), &out);
        assert!(out.stalls.mean > 0.0, "centralized scheduler must stall");
        let llum = run_serving(tiny_config(SchedulerKind::Llumnix, 8), trace.clone());
        assert_eq!(llum.stalls.mean, 0.0, "llumnix steps never stall");
    }

    #[test]
    fn runs_are_deterministic() {
        let trace = tiny_trace(150, 6.0, 5);
        let a = run_serving(tiny_config(SchedulerKind::Llumnix, 3), trace.clone());
        let b = run_serving(tiny_config(SchedulerKind::Llumnix, 3), trace);
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.finish, y.finish);
            assert_eq!(x.preemptions, y.preemptions);
            assert_eq!(x.migrations, y.migrations);
        }
        assert_eq!(a.migration_stats.started, b.migration_stats.started);
    }

    /// Regression for the ordered-container conversion: under migration
    /// pressure the per-tick pairing sweep iterates `pairs`, and the
    /// coordinator's teardown scans iterate its active set; both orders feed
    /// the event queue. Repeated runs must agree on the *entire* migration
    /// history — counts, downtimes, and stage totals — not just completions.
    #[test]
    fn migration_pairing_identical_across_runs() {
        let trace = tiny_trace(300, 8.0, 12);
        let run = || run_serving(tiny_config(SchedulerKind::Llumnix, 4), trace.clone());
        let a = run();
        let b = run();
        assert!(a.migration_stats.started > 0, "no migration pressure");
        assert_eq!(a.migration_stats.started, b.migration_stats.started);
        assert_eq!(a.migration_stats.committed, b.migration_stats.committed);
        assert_eq!(a.migration_stats.aborted, b.migration_stats.aborted);
        assert_eq!(
            a.migration_stats.total_downtime,
            b.migration_stats.total_downtime
        );
        assert_eq!(
            a.migration_stats.total_stages,
            b.migration_stats.total_stages
        );
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.finish, y.finish);
            assert_eq!(x.migrations, y.migrations);
            assert_eq!(x.migration_downtime, y.migration_downtime);
        }
        assert_eq!(a.events_processed, b.events_processed);
    }

    #[test]
    fn autoscaling_grows_and_shrinks() {
        let trace = tiny_trace(400, 10.0, 6);
        let scale = AutoScaleConfig {
            min_instances: 1,
            max_instances: 8,
            freeness_low: 10.0,
            freeness_high: 60.0,
            sustain: SimDuration::from_secs(2),
            startup_delay: SimDuration::from_secs(3),
        };
        let cfg = tiny_config(SchedulerKind::Llumnix, 1).with_autoscale(scale);
        let out = run_serving(cfg, trace.clone());
        assert_all_complete(trace.len(), &out);
        assert!(
            out.instances.max() > 1.0,
            "load should trigger scale-up: max {}",
            out.instances.max()
        );
        // After the trace drains, instances scale back down.
        let final_count = out.instances.points().last().expect("samples").1;
        assert!(
            final_count < out.instances.max(),
            "expected scale-down at the end"
        );
        assert!(out.avg_instances >= 1.0 && out.avg_instances <= 8.0);
    }

    #[test]
    fn instance_failure_aborts_but_service_continues() {
        let trace = tiny_trace(200, 5.0, 7);
        let mut cfg = tiny_config(SchedulerKind::Llumnix, 3);
        cfg.failures = vec![FailureSpec::Instance {
            instance: InstanceId(0),
            at: SimTime::from_secs(5),
            restart_after: Some(SimDuration::from_secs(2)),
        }];
        let out = run_serving(cfg, trace.clone());
        // Some requests died with the instance, the rest completed.
        assert_all_complete(trace.len(), &out);
        assert!(out.aborted > 0, "failure should abort resident requests");
        assert!(
            out.records.len() > trace.len() / 2,
            "most requests still complete"
        );
    }

    #[test]
    fn global_scheduler_failure_falls_back_to_bypass() {
        let trace = tiny_trace(200, 5.0, 8);
        let mut cfg = tiny_config(SchedulerKind::Llumnix, 3);
        cfg.failures = vec![FailureSpec::GlobalScheduler {
            at: SimTime::from_secs(2),
            duration: SimDuration::from_secs(20),
        }];
        let out = run_serving(cfg, trace.clone());
        // Availability is preserved: every request is still served.
        assert_all_complete(trace.len(), &out);
        assert_eq!(out.aborted, 0);
    }

    #[test]
    fn empty_trace_is_fine() {
        let trace = Trace {
            name: "empty".into(),
            requests: vec![],
        };
        let out = run_serving(tiny_config(SchedulerKind::Llumnix, 2), trace);
        assert!(out.records.is_empty());
        assert_eq!(out.aborted, 0);
    }

    #[test]
    fn redispatch_continues_main_round_robin_cycle() {
        // Regression: `redispatch` used to build a throwaway `Dispatcher`
        // (round-robin counter reset to 0), so a re-dispatched request
        // always landed on the first instance instead of continuing the
        // cycle.
        let trace = tiny_trace(3, 0.1, 10);
        let mut sim = ServingSim::new(tiny_config(SchedulerKind::RoundRobin, 3), trace);
        sim.dispatch(0); // rr counter 0 → instance 0
        let meta = RequestMeta {
            id: RequestId(900),
            input_len: 16,
            output_len: 4,
            priority: PriorityPair::NORMAL,
            arrival: SimTime::ZERO,
        };
        sim.redispatch(meta);
        assert_eq!(
            sim.store
                .get(InstanceId(1))
                .expect("live")
                .engine
                .tracked_requests(),
            1,
            "redispatch must continue the main dispatcher's round-robin cycle"
        );
        assert_eq!(
            sim.store
                .get(InstanceId(0))
                .expect("live")
                .engine
                .tracked_requests(),
            1,
            "instance 0 holds only the original dispatch"
        );
    }

    #[test]
    fn redispatch_keeps_high_priority_routing() {
        // Regression: `redispatch` used to call plain `dispatch`, losing the
        // high-priority routing rule (headroom-free freeness). Instance 0
        // hosts a resident high-priority request, so its *virtual* freeness
        // is depressed by the priority headroom while its physical freeness
        // is the best in the fleet; a high-priority request must go there.
        let spec = presets::by_name("S-S", 1, Arrivals::poisson(1.0))
            .expect("preset")
            .with_max_total_tokens(500)
            .with_high_priority_fraction(1.0);
        let trace = spec.generate(&SimRng::new(11));
        assert!(trace.requests[0].high_priority);
        let high_id = trace.requests[0].id;
        let mut sim = ServingSim::new(tiny_config(SchedulerKind::Llumnix, 2), trace);
        let make_resident = |sim: &mut ServingSim, inst: u32, id: u64, input: u32, pr| {
            let e = &mut sim.store.get_mut(InstanceId(inst)).expect("live").engine;
            e.add_request(
                RequestMeta {
                    id: RequestId(id),
                    input_len: input,
                    output_len: 50,
                    priority: pr,
                    arrival: SimTime::ZERO,
                },
                SimTime::ZERO,
            );
            let p = e.poll_step(SimTime::ZERO).expect("prefill");
            e.complete_step(p.finish_at());
        };
        make_resident(&mut sim, 0, 901, 100, PriorityPair::HIGH);
        make_resident(&mut sim, 1, 902, 300, PriorityPair::NORMAL);
        // Sanity: the orderings disagree, so the two rules pick differently.
        sim.refresh_fleet();
        let normal_pick = sim.index.freest(false);
        let high_pick = sim.index.freest(true);
        assert_eq!(
            normal_pick,
            Some(InstanceId(1)),
            "virtual freeness avoids headroom"
        );
        assert_eq!(
            high_pick,
            Some(InstanceId(0)),
            "physical freeness ignores it"
        );
        let meta = RequestMeta {
            id: RequestId(high_id),
            input_len: 32,
            output_len: 8,
            priority: PriorityPair::HIGH,
            arrival: SimTime::ZERO,
        };
        sim.redispatch(meta);
        assert_eq!(
            sim.store
                .get(InstanceId(0))
                .expect("live")
                .engine
                .tracked_requests(),
            2,
            "high-priority redispatch must use the headroom-free rule"
        );
    }

    fn churn_plan(seed: u64, crash_rate: f64) -> FaultPlan {
        let cfg = llumnix_faults::FaultPlanConfig::none()
            .with_crashes(crash_rate, Some(SimDuration::from_secs(2)))
            .with_horizon(SimDuration::from_secs(600));
        FaultPlan::generate(&cfg, &SimRng::new(seed))
    }

    #[test]
    fn planned_crashes_redispatch_instead_of_aborting() {
        let trace = tiny_trace(200, 5.0, 21);
        // ~1 crash per 4 simulated seconds over a ~40 s trace.
        let cfg = tiny_config(SchedulerKind::Llumnix, 3).with_faults(churn_plan(21, 900.0));
        let out = run_serving(cfg, trace.clone());
        assert_all_complete(trace.len(), &out);
        let fs = &out.fault_stats;
        assert!(fs.crashes > 0, "plan should fire crashes: {fs:?}");
        assert!(fs.requests_lost > 0, "crashes should lose requests");
        assert!(fs.consistent(), "lost ledger must balance: {fs:?}");
        // With a 3-instance fleet and 2 s restarts a dispatch target always
        // exists, so every lost request recovers instead of aborting.
        assert_eq!(fs.requests_lost_aborted, 0);
        assert_eq!(out.aborted, 0, "redispatch path must not abort");
        assert!(
            fs.recovery_latency.count as u64 <= fs.requests_redispatched,
            "recoveries cannot exceed redispatches"
        );
        assert!(
            fs.failure_aborts() <= out.migration_stats.aborted,
            "failure aborts are a subset of all migration aborts"
        );
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let trace = tiny_trace(200, 6.0, 22);
        let plan = {
            let cfg = llumnix_faults::FaultPlanConfig::none()
                .with_crashes(600.0, Some(SimDuration::from_secs(2)))
                .with_slowdowns(1200.0, (2.0, 3.0), SimDuration::from_secs(5))
                .with_link_failures(600.0, SimDuration::from_secs(2))
                .with_horizon(SimDuration::from_secs(600));
            FaultPlan::generate(&cfg, &SimRng::new(22))
        };
        let run = || {
            run_serving(
                tiny_config(SchedulerKind::Llumnix, 3).with_faults(plan.clone()),
                trace.clone(),
            )
        };
        let a = run();
        let b = run();
        assert!(
            !a.fault_stats.quiet(),
            "faults should fire: {:?}",
            a.fault_stats
        );
        assert_eq!(a.fault_stats, b.fault_stats);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.finish, y.finish);
            assert_eq!(x.migrations, y.migrations);
        }
    }

    #[test]
    fn slowdowns_stretch_latency() {
        let trace = tiny_trace(200, 5.0, 23);
        // Round-robin: no migrations, so a straggler cannot shed load and
        // the stretch must show up in end-to-end latency.
        let base = run_serving(tiny_config(SchedulerKind::RoundRobin, 3), trace.clone());
        let cfg = llumnix_faults::FaultPlanConfig::none()
            .with_slowdowns(1800.0, (2.5, 3.5), SimDuration::from_secs(10))
            .with_horizon(SimDuration::from_secs(600));
        let plan = FaultPlan::generate(&cfg, &SimRng::new(23));
        let slowed = run_serving(
            tiny_config(SchedulerKind::RoundRobin, 3).with_faults(plan),
            trace.clone(),
        );
        assert_all_complete(trace.len(), &slowed);
        assert!(slowed.fault_stats.slowdowns > 0);
        assert_eq!(slowed.fault_stats.crashes, 0);
        let mean = |o: &ServingOutput| {
            o.records
                .iter()
                .map(|r| r.finish.since(r.arrival).as_secs_f64())
                .sum::<f64>()
                / o.records.len() as f64
        };
        assert!(
            mean(&slowed) > mean(&base),
            "stragglers must stretch mean e2e latency ({} vs {})",
            mean(&slowed),
            mean(&base)
        );
    }

    #[test]
    fn link_failures_abort_inflight_migrations() {
        // Heavy migration pressure + frequent long link outages: some stage
        // events must land while a link is down.
        let trace = tiny_trace(300, 8.0, 24);
        let cfg = llumnix_faults::FaultPlanConfig::none()
            .with_link_failures(3600.0, SimDuration::from_secs(2))
            .with_horizon(SimDuration::from_secs(600));
        let plan = FaultPlan::generate(&cfg, &SimRng::new(24));
        let out = run_serving(
            tiny_config(SchedulerKind::Llumnix, 4).with_faults(plan),
            trace.clone(),
        );
        assert_all_complete(trace.len(), &out);
        assert!(out.fault_stats.link_failures > 0);
        assert!(out.fault_stats.failure_aborts() <= out.migration_stats.aborted);
    }

    /// Drives the stage-boundary LinkFailed abort deterministically: start a
    /// migration, kill the link mid-copy, and deliver the stage event.
    #[test]
    fn downed_link_aborts_migration_at_stage_boundary() {
        let trace = tiny_trace(3, 0.1, 26);
        let mut sim = ServingSim::new(tiny_config(SchedulerKind::Llumnix, 2), trace);
        let e = &mut sim.store.get_mut(InstanceId(0)).expect("live").engine;
        e.add_request(
            RequestMeta {
                id: RequestId(950),
                input_len: 128,
                output_len: 64,
                priority: PriorityPair::NORMAL,
                arrival: SimTime::ZERO,
            },
            SimTime::ZERO,
        );
        let p = e.poll_step(SimTime::ZERO).expect("prefill");
        e.complete_step(p.finish_at());
        sim.pairs.insert(InstanceId(0), InstanceId(1));
        sim.continue_pair(InstanceId(0));
        assert_eq!(sim.coordinator.active_count(), 1, "migration started");
        // The first stage's copy is now in flight; the destination's link
        // dies before it completes.
        sim.link_down_until
            .insert(InstanceId(1), SimTime::from_secs(3600));
        let (at, ev) = sim.queue.pop().expect("stage event queued");
        sim.now = at;
        sim.handle(ev);
        assert_eq!(sim.coordinator.active_count(), 0, "migration aborted");
        assert_eq!(sim.fault_stats.aborts_link_failed, 1);
        // And no new migration starts while the link is down.
        sim.continue_pair(InstanceId(0));
        assert_eq!(sim.coordinator.active_count(), 0);
    }

    /// Satellite regression (guards the PR 2 `redispatch` fix under the new
    /// failure path): a crashed instance's queued + running requests are
    /// redispatched exactly once each, with their priority class preserved.
    #[test]
    fn crashed_instance_redispatches_exactly_once_with_priority() {
        let trace = tiny_trace(3, 0.1, 25);
        let mut sim = ServingSim::new(tiny_config(SchedulerKind::Llumnix, 3), trace);
        sim.high_ids.insert(901);
        let add = |sim: &mut ServingSim, id: u64, pr: PriorityPair, run_prefill: bool| {
            let e = &mut sim.store.get_mut(InstanceId(0)).expect("live").engine;
            e.add_request(
                RequestMeta {
                    id: RequestId(id),
                    input_len: 64,
                    output_len: 32,
                    priority: pr,
                    arrival: SimTime::ZERO,
                },
                SimTime::ZERO,
            );
            if run_prefill {
                let p = e.poll_step(SimTime::ZERO).expect("prefill");
                e.complete_step(p.finish_at());
            }
        };
        // One running (post-prefill) high-priority request and one queued
        // normal request, both on the doomed instance.
        add(&mut sim, 901, PriorityPair::HIGH, true);
        add(&mut sim, 900, PriorityPair::NORMAL, false);
        sim.fault_stats.crashes += 1;
        sim.crash_instance(InstanceId(0));

        assert!(
            !sim.store.contains(InstanceId(0)),
            "crashed instance evicted"
        );
        let fs = &sim.fault_stats;
        assert_eq!(fs.requests_lost, 2, "both resident requests lost");
        assert_eq!(fs.requests_redispatched, 2);
        assert_eq!(fs.requests_lost_aborted, 0);
        assert!(fs.consistent());
        for id in [900u64, 901] {
            let holders: Vec<InstanceId> = sim
                .store
                .iter()
                .filter(|(_, l)| l.engine.state(RequestId(id)).is_some())
                .map(|(i, _)| i)
                .collect();
            assert_eq!(holders.len(), 1, "request {id} must live exactly once");
        }
        let high_holder = sim
            .store
            .iter()
            .find(|(_, l)| l.engine.state(RequestId(901)).is_some())
            .expect("redispatched");
        assert_eq!(
            high_holder
                .1
                .engine
                .state(RequestId(901))
                .expect("state")
                .meta
                .priority,
            PriorityPair::HIGH,
            "priority class preserved across redispatch"
        );
    }

    // ---- windowed sharded core (DESIGN.md §10) ------------------------------

    fn sharded(mut cfg: ServingConfig, k: usize, parallel: bool) -> ServingConfig {
        let mut sc = ShardConfig::new(k);
        if parallel {
            sc = sc.with_force_parallel();
        }
        cfg.shard = Some(sc);
        cfg
    }

    fn sharded_no_autotune(mut cfg: ServingConfig, k: usize) -> ServingConfig {
        cfg.shard = Some(
            ShardConfig::new(k)
                .with_autotune(false)
                .with_force_parallel(),
        );
        cfg
    }

    /// Byte-identical-schedule check for the windowed core: every observable
    /// of the run, including float accumulators and event counts, must match.
    fn assert_identical(a: &ServingOutput, b: &ServingOutput) {
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.first_token, y.first_token);
            assert_eq!(x.finish, y.finish);
            assert_eq!(x.preemptions, y.preemptions);
            assert_eq!(x.migrations, y.migrations);
            assert_eq!(x.migration_downtime, y.migration_downtime);
        }
        assert_eq!(a.aborted, b.aborted);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.migration_stats.started, b.migration_stats.started);
        assert_eq!(a.migration_stats.committed, b.migration_stats.committed);
        assert_eq!(a.migration_stats.aborted, b.migration_stats.aborted);
        assert_eq!(
            a.migration_stats.total_downtime,
            b.migration_stats.total_downtime
        );
        assert_eq!(a.fault_stats, b.fault_stats);
        assert_eq!(a.stalls.count, b.stalls.count);
        assert_eq!(a.stalls.mean, b.stalls.mean, "stall float sums must match");
        assert_eq!(a.high_step_batches.count, b.high_step_batches.count);
        assert_eq!(a.high_step_batches.mean, b.high_step_batches.mean);
        assert_eq!(a.avg_instances, b.avg_instances);
    }

    #[test]
    fn windowed_schedule_is_shard_count_independent() {
        let trace = tiny_trace(300, 8.0, 31);
        let base = tiny_config(SchedulerKind::Llumnix, 4);
        let k1 = run_serving(sharded(base.clone(), 1, false), trace.clone());
        let k2 = run_serving(sharded(base.clone(), 2, true), trace.clone());
        let k4 = run_serving(sharded(base.clone(), 4, true), trace.clone());
        // Same K, worker threads vs inline: the pool must be pure plumbing.
        let k4_inline = run_serving(sharded(base, 4, false), trace.clone());
        assert_all_complete(trace.len(), &k1);
        assert!(k1.migration_stats.started > 0, "want migration pressure");
        assert_identical(&k1, &k2);
        assert_identical(&k1, &k4);
        assert_identical(&k4, &k4_inline);
    }

    #[test]
    fn windowed_autotune_stretching_is_unobservable() {
        // Autotuned window stretching must not change a single observable —
        // same records, same float sums, same event count — while actually
        // merging windows (fewer barriers). Migration pressure plus
        // autoscaling churn exercises every quiescence gate.
        let trace = tiny_trace(300, 8.0, 31);
        let base = tiny_config(SchedulerKind::Llumnix, 4);
        let on = run_serving(sharded(base.clone(), 2, true), trace.clone());
        let off = run_serving(sharded_no_autotune(base.clone(), 2), trace.clone());
        assert_all_complete(trace.len(), &on);
        assert!(
            on.window_stats.windows < off.window_stats.windows,
            "autotuning must merge some windows ({} vs {})",
            on.window_stats.windows,
            off.window_stats.windows
        );
        assert_identical(&on, &off);
        // And the stretched schedule stays shard-count independent.
        let on_k1 = run_serving(sharded(base, 1, false), trace);
        assert_identical(&on, &on_k1);
    }

    #[test]
    fn windowed_autotune_with_autoscaling_is_unobservable() {
        // Scale-up (starting instances) and scale-down (terminating
        // instances) both gate stretching; the schedule must be identical
        // with autotuning on and off through that churn.
        let trace = tiny_trace(400, 10.0, 34);
        let scale = AutoScaleConfig {
            min_instances: 1,
            max_instances: 8,
            freeness_low: 10.0,
            freeness_high: 60.0,
            sustain: SimDuration::from_secs(2),
            startup_delay: SimDuration::from_secs(3),
        };
        let base = tiny_config(SchedulerKind::Llumnix, 1).with_autoscale(scale);
        let on = run_serving(sharded(base.clone(), 3, true), trace.clone());
        let off = run_serving(sharded_no_autotune(base, 3), trace.clone());
        assert_all_complete(trace.len(), &on);
        assert!(on.instances.max() > 1.0, "load should trigger scale-up");
        assert_identical(&on, &off);
    }

    #[test]
    fn windowed_faults_are_shard_count_independent() {
        let trace = tiny_trace(200, 6.0, 32);
        let cfg = llumnix_faults::FaultPlanConfig::none()
            .with_crashes(600.0, Some(SimDuration::from_secs(2)))
            .with_slowdowns(1200.0, (2.0, 3.0), SimDuration::from_secs(5))
            .with_link_failures(600.0, SimDuration::from_secs(2))
            .with_horizon(SimDuration::from_secs(600));
        let plan = FaultPlan::generate(&cfg, &SimRng::new(32));
        let base = tiny_config(SchedulerKind::Llumnix, 3).with_faults(plan);
        let k1 = run_serving(sharded(base.clone(), 1, false), trace.clone());
        // A shard count that does not divide the fleet exercises uneven
        // partitions.
        let k3 = run_serving(sharded(base, 3, true), trace.clone());
        assert!(!k1.fault_stats.quiet(), "faults should fire");
        assert_all_complete(trace.len(), &k1);
        assert_identical(&k1, &k3);
    }

    #[test]
    fn windowed_centralized_defers_stall_decisions_identically() {
        let trace = tiny_trace(200, 10.0, 33);
        let base = tiny_config(SchedulerKind::Centralized, 8);
        let k1 = run_serving(sharded(base.clone(), 1, false), trace.clone());
        let k4 = run_serving(sharded(base, 4, true), trace.clone());
        assert_all_complete(trace.len(), &k1);
        assert!(k1.stalls.mean > 0.0, "centralized scheduler must stall");
        assert_identical(&k1, &k4);
    }

    #[test]
    fn windowed_autoscaling_is_shard_count_independent() {
        let trace = tiny_trace(400, 10.0, 34);
        let scale = AutoScaleConfig {
            min_instances: 1,
            max_instances: 8,
            freeness_low: 10.0,
            freeness_high: 60.0,
            sustain: SimDuration::from_secs(2),
            startup_delay: SimDuration::from_secs(3),
        };
        let base = tiny_config(SchedulerKind::Llumnix, 1).with_autoscale(scale);
        let k1 = run_serving(sharded(base.clone(), 1, false), trace.clone());
        let k4 = run_serving(sharded(base, 4, true), trace.clone());
        assert_all_complete(trace.len(), &k1);
        assert!(k1.instances.max() > 1.0, "load should trigger scale-up");
        assert_identical(&k1, &k4);
    }

    #[test]
    fn windowed_priority_runs_match_across_shard_counts() {
        let spec = presets::by_name("S-S", 200, Arrivals::poisson(6.0))
            .expect("preset")
            .with_max_total_tokens(2_000)
            .with_high_priority_fraction(0.3);
        let trace = spec.generate(&SimRng::new(35));
        let base = tiny_config(SchedulerKind::Llumnix, 4);
        let k1 = run_serving(sharded(base.clone(), 1, false), trace.clone());
        let k2 = run_serving(sharded(base, 2, true), trace.clone());
        assert!(
            k1.high_step_batches.count > 0,
            "high-priority batches observed"
        );
        assert_identical(&k1, &k2);
    }

    /// Full-output equality for snapshot round-trips: everything
    /// `assert_identical` checks, plus the diagnostics it deliberately
    /// skips (critical-path accounting, window statistics, time-series
    /// samples). A pure snapshot/resume must reproduce even the
    /// observables that forked fault arms are allowed to perturb
    /// (DESIGN.md §13).
    fn assert_outputs_bitwise(a: &ServingOutput, b: &ServingOutput) {
        assert_identical(a, b);
        assert_eq!(a.critical_path_events, b.critical_path_events);
        assert_eq!(a.window_stats, b.window_stats);
        for (s, t) in [
            (&a.fragmentation, &b.fragmentation),
            (&a.free_blocks, &b.free_blocks),
            (&a.hol_satisfiable, &b.hol_satisfiable),
            (&a.queued, &b.queued),
            (&a.instances, &b.instances),
        ] {
            assert_eq!(s.points(), t.points(), "series {} must match", s.name);
        }
    }

    /// Runs `cfg` over `trace` twice — uninterrupted, and snapshotted at
    /// `fork_at` then resumed — and demands bitwise-identical outputs.
    /// Also checks the snapshot is non-destructive: the donor sim keeps
    /// running to the same output after being snapshotted.
    fn assert_snapshot_roundtrip(
        cfg: ServingConfig,
        trace: Trace,
        fork_at: SimTime,
    ) -> ServingOutput {
        let cold = ServingSim::new(cfg.clone(), trace.clone()).run();
        let mut warm = ServingSim::new(cfg, trace);
        let reached = warm.run_until(fork_at);
        assert!(reached > SimTime::ZERO, "fork point must see progress");
        let snap = warm.snapshot();
        let resumed = ServingSim::resume(&snap).run();
        assert_outputs_bitwise(&cold, &resumed);
        let continued = warm.run();
        assert_outputs_bitwise(&cold, &continued);
        cold
    }

    #[test]
    fn snapshot_roundtrip_classic() {
        let trace = tiny_trace(300, 8.0, 41);
        let cfg = tiny_config(SchedulerKind::Llumnix, 4);
        let out = assert_snapshot_roundtrip(cfg, trace.clone(), SimTime::from_secs(8));
        assert_all_complete(trace.len(), &out);
        assert!(
            out.migration_stats.started > 0,
            "fork under migration pressure"
        );
    }

    #[test]
    fn snapshot_roundtrip_windowed_shards() {
        let trace = tiny_trace(300, 8.0, 42);
        let base = tiny_config(SchedulerKind::Llumnix, 4);
        let out = assert_snapshot_roundtrip(
            sharded(base.clone(), 4, true),
            trace.clone(),
            SimTime::from_secs(8),
        );
        assert_all_complete(trace.len(), &out);
        assert!(out.migration_stats.started > 0);
        // Fixed (non-autotuned) windows restore the same schedule too.
        assert_snapshot_roundtrip(sharded_no_autotune(base, 4), trace, SimTime::from_secs(8));
    }

    #[test]
    fn snapshot_roundtrip_with_pending_faults_and_restarts() {
        let trace = tiny_trace(200, 5.0, 43);
        let cfg = tiny_config(SchedulerKind::Llumnix, 3).with_faults(churn_plan(43, 900.0));
        // Fork mid-churn: planned faults already fired, more pending, and
        // crashed instances possibly mid-restart at the fork point.
        let out = assert_snapshot_roundtrip(cfg.clone(), trace.clone(), SimTime::from_secs(10));
        assert!(out.fault_stats.crashes > 0, "plan should fire crashes");
        assert_snapshot_roundtrip(sharded(cfg, 3, true), trace, SimTime::from_secs(10));
    }

    #[test]
    fn snapshot_roundtrip_with_autoscaling() {
        let trace = tiny_trace(400, 10.0, 44);
        let scale = AutoScaleConfig {
            min_instances: 1,
            max_instances: 8,
            freeness_low: 10.0,
            freeness_high: 60.0,
            sustain: SimDuration::from_secs(2),
            startup_delay: SimDuration::from_secs(3),
        };
        let base = tiny_config(SchedulerKind::Llumnix, 1).with_autoscale(scale);
        let out = assert_snapshot_roundtrip(sharded(base, 3, true), trace, SimTime::from_secs(10));
        assert!(out.instances.max() > 1.0, "load should trigger scale-up");
    }

    #[test]
    fn snapshot_before_any_progress_forks_cleanly() {
        let trace = tiny_trace(120, 4.0, 45);
        let cfg = tiny_config(SchedulerKind::Llumnix, 4);
        let cold = run_serving(cfg.clone(), trace.clone());
        // Snapshot of an unseeded sim: resume seeds on its first run, and
        // two resumes of one snapshot fork fully independent runs.
        let sim = ServingSim::new(cfg, trace);
        let snap = sim.snapshot();
        let a = ServingSim::resume(&snap).run();
        let b = ServingSim::resume(&snap).run();
        assert_outputs_bitwise(&cold, &a);
        assert_outputs_bitwise(&a, &b);
    }

    #[test]
    fn forked_fault_arms_match_cold_runs_classic() {
        let trace = tiny_trace(200, 5.0, 46);
        let base = tiny_config(SchedulerKind::Llumnix, 3);
        // Every planned fault must fire strictly after the fork point; the
        // start offset leaves margin over the 10 s fork.
        let plan = |rate: f64| {
            let cfg = llumnix_faults::FaultPlanConfig::none()
                .with_crashes(rate, Some(SimDuration::from_secs(2)))
                .with_horizon(SimDuration::from_secs(600))
                .with_start_offset(SimDuration::from_secs(12));
            FaultPlan::generate(&cfg, &SimRng::new(46))
        };
        let mut warm = ServingSim::new(base.clone(), trace.clone());
        warm.run_until(SimTime::from_secs(10));
        let snap = warm.snapshot();
        for p in [plan(400.0), plan(900.0)] {
            assert!(p.get(0).is_some(), "plan must fire inside the trace");
            let cold = run_serving(base.clone().with_faults(p.clone()), trace.clone());
            assert!(cold.fault_stats.crashes > 0, "plan should fire");
            let mut fork = ServingSim::resume(&snap);
            fork.activate_faults(p);
            // Classic mode has no windows to perturb: full equality holds
            // between the forked arm and the cold run configured with the
            // same plan from t = 0.
            assert_outputs_bitwise(&cold, &fork.run());
        }
        // The "none" arm is an empty plan — a plain resume.
        let none = FaultPlan::generate(&llumnix_faults::FaultPlanConfig::none(), &SimRng::new(0));
        let cold_none = run_serving(base, trace);
        let mut fork = ServingSim::resume(&snap);
        fork.activate_faults(none);
        assert_outputs_bitwise(&cold_none, &fork.run());
    }

    #[test]
    fn forked_fault_arms_match_cold_runs_windowed() {
        let trace = tiny_trace(200, 6.0, 47);
        let base = sharded(tiny_config(SchedulerKind::Llumnix, 3), 3, true);
        let cfg = llumnix_faults::FaultPlanConfig::none()
            .with_crashes(700.0, Some(SimDuration::from_secs(2)))
            .with_slowdowns(1200.0, (2.0, 3.0), SimDuration::from_secs(5))
            .with_link_failures(600.0, SimDuration::from_secs(2))
            .with_horizon(SimDuration::from_secs(600))
            .with_start_offset(SimDuration::from_secs(10));
        let plan = FaultPlan::generate(&cfg, &SimRng::new(47));
        let cold = run_serving(base.clone().with_faults(plan.clone()), trace.clone());
        assert!(!cold.fault_stats.quiet(), "faults should fire");
        assert_all_complete(trace.len(), &cold);
        let mut warm = ServingSim::new(base, trace);
        // Windows drain whole, so the fork lands at ≤ 8 s + one window —
        // still safely before the 10 s fault offset.
        warm.run_until(SimTime::from_secs(8));
        let fork = ServingSim::resume(&warm.snapshot());
        let mut fork = fork;
        fork.activate_faults(plan);
        // The pending fault event can clamp autotuned window stretching
        // during the cold warmup where the fault-free forked warmup is not
        // clamped, so window diagnostics are exempt; the schedule itself
        // must match byte for byte (DESIGN.md §13).
        assert_identical(&cold, &fork.run());
    }

    #[test]
    fn llumnix_base_ignores_priorities() {
        let spec = presets::by_name("S-S", 150, Arrivals::poisson(6.0))
            .expect("preset")
            .with_high_priority_fraction(0.3);
        let trace = spec.generate(&SimRng::new(9));
        let out = run_serving(tiny_config(SchedulerKind::LlumnixBase, 3), trace.clone());
        assert_all_complete(trace.len(), &out);
        // Records still carry the trace's priority labels for reporting.
        assert!(out
            .records
            .iter()
            .any(|r| r.priority == RecordPriority::High));
    }
}
