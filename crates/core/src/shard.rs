//! Sharded fleet state for the conservative time-windowed parallel core.
//!
//! The windowed mode of [`crate::ServingSim`] partitions the fleet across K
//! shards by `instance_id % K`. Each shard owns its instances' slab storage,
//! their engine-step completion chains (a private [`EventQueue`]), and their
//! straggler map — everything a step completion touches without consulting
//! another instance. All cross-instance machinery (dispatch, migration
//! pairing and handshakes, fault firing, sampling, auto-scaling) stays on
//! the coordinator and runs between windows.
//!
//! A window `[t, t + lookahead)` drains every shard's local events —
//! inline or on [`llumnix_sim::ShardPool`] workers — and buffers every
//! cross-shard consequence (finished requests, drain/finish/preempt
//! notifications, deferred central-scheduler decisions) as an [`Effect`]
//! tagged with an [`EffectKey`]. The barrier merges the buffers with
//! [`llumnix_sim::merge_windowed`] and applies them in key order, so the
//! schedule is a pure function of `(seed, config)` — independent of the
//! shard count and of which thread drained which shard. The lookahead is
//! the modeled llumlet ↔ global-scheduler RPC latency: deferring a shard's
//! outbound notifications to the barrier models that latency rather than
//! approximating around it (DESIGN.md §10).

use std::collections::BTreeMap;

use llumnix_engine::{EngineEvent, InstanceEngine, InstanceId, Priority, SeqState, StepKind};
use llumnix_sim::{EffectKey, EventQueue, SimDuration, SimTime};

use crate::llumlet::Llumlet;
use crate::store::InstanceStore;

/// Configuration of the sharded windowed simulation core.
///
/// `None` in [`crate::ServingConfig::shard`] keeps the classic
/// single-queue event loop byte-for-byte unchanged. `Some` switches to the
/// windowed discipline — at *any* shard count, including 1: the windowed
/// core's contract is that its output is identical for every `shards`
/// value, not that it equals the classic loop (the window barrier models
/// the llumlet ↔ scheduler RPC latency the classic loop idealizes away).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardConfig {
    /// Number of shards K (≥ 1).
    pub shards: usize,
    /// Conservative lookahead: the window length, equal to the modeled
    /// llumlet ↔ global-scheduler RPC latency. Cross-shard notifications
    /// emitted inside a window are delivered at its barrier, i.e. after at
    /// most one lookahead — exactly the delay the RPC would impose.
    pub lookahead: SimDuration,
    /// Run shard drains on worker threads even when the host reports a
    /// single CPU (the result is identical either way; this only forces the
    /// parallel code path, e.g. for benches measuring it).
    pub force_parallel: bool,
}

impl ShardConfig {
    /// Windowed core with `shards` shards and the default lookahead.
    ///
    /// The default lookahead is 2 ms: the scale of one actor-RPC round
    /// between a llumlet and the global scheduler in the modeled deployment
    /// (well under the 20 ms migration commit pause and the ≥ 100 ms
    /// dispatch/pairing cadences that dominate cross-instance causality;
    /// comfortably over the 50 µs per-message transfer overhead that models
    /// intra-migration messaging, which never crosses shards mid-handshake).
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        ShardConfig {
            shards,
            lookahead: SimDuration::from_millis(2),
            force_parallel: false,
        }
    }

    /// Overrides the lookahead.
    pub fn with_lookahead(mut self, lookahead: SimDuration) -> Self {
        self.lookahead = lookahead;
        self
    }

    /// Forces worker-thread drains regardless of host parallelism.
    pub fn with_force_parallel(mut self) -> Self {
        self.force_parallel = true;
        self
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig::new(4)
    }
}

/// A cross-shard consequence of shard-local work, applied at the barrier.
#[derive(Debug)]
pub(crate) enum Effect {
    /// A request reached a terminal state (`take_finished` entry).
    Finished(SeqState),
    /// An engine event the coordinator must route (migration aborts on
    /// finish/preempt, drain handoffs, abort counting).
    Engine(EngineEvent),
    /// A decode step containing a high-execution-priority request ran with
    /// this batch size (the §6.4 isolation diagnostic; observed at the
    /// barrier so the accumulator's float sum sees one canonical order).
    HighBatch(f64),
    /// Centralized-scheduler mode: the shard polled a step but its start
    /// awaits the central scheduler's decision. The barrier replays these
    /// through the single FIFO stall model in canonical order and schedules
    /// the completion back into the owning shard.
    StepPending {
        /// Requests whose status the decision synchronizes.
        tracked: usize,
        /// Step finish time before the central stall is added.
        finish: SimTime,
    },
    /// The instance is terminating; the coordinator re-checks whether it
    /// can now be retired.
    CheckTermination,
}

/// Per-class counters over [`Effect`] traffic. Shards count what they emit;
/// the coordinator counts what it applies; teardown asserts the ledgers
/// reconcile (the honest-accounting guard for the cross-shard protocol).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EffectCounts {
    pub finished: u64,
    pub engine: u64,
    pub high_batch: u64,
    pub steps: u64,
    pub termination: u64,
}

impl EffectCounts {
    pub(crate) fn count(&mut self, effect: &Effect) {
        match effect {
            Effect::Finished(_) => self.finished += 1,
            Effect::Engine(_) => self.engine += 1,
            Effect::HighBatch(_) => self.high_batch += 1,
            Effect::StepPending { .. } => self.steps += 1,
            Effect::CheckTermination => self.termination += 1,
        }
    }

    fn add(&mut self, other: &EffectCounts) {
        self.finished += other.finished;
        self.engine += other.engine;
        self.high_batch += other.high_batch;
        self.steps += other.steps;
        self.termination += other.termination;
    }
}

/// What one shard hands back from one window drain.
#[derive(Debug, Default)]
pub(crate) struct WindowOutbox {
    /// Buffered cross-shard effects, in emission order (sorted by key:
    /// local pops are time-ordered and `seq` orders within an episode).
    pub effects: Vec<(EffectKey, Effect)>,
    /// Zero-stall observations owed to the stall summary (one per polled
    /// step outside centralized mode). Zeros are order-free in the
    /// accumulator, so a count suffices.
    pub stall_zeros: u64,
    /// Local events popped during this window (stale pops included).
    pub events: u64,
}

/// One shard: its instances, their step-completion chains, their straggler
/// state, and its lifetime emission ledgers.
#[derive(Default)]
pub(crate) struct ShardState {
    /// Slab of this shard's llumlets.
    pub store: InstanceStore,
    /// Shard-local event queue; payloads are instance ids whose step
    /// completes at the scheduled time. Carries the same debug shadow-heap
    /// cross-check as the global queue.
    pub queue: EventQueue<InstanceId>,
    /// Straggling instances of this shard: id → (expiry, latency factor).
    pub slow_until: BTreeMap<InstanceId, (SimTime, f64)>,
    /// Centralized mode: polled steps defer to the barrier instead of
    /// scheduling locally.
    pub defer_steps: bool,
    /// Lifetime local events popped (reconciled at teardown).
    pub events: u64,
    /// Lifetime effects emitted by class (reconciled at teardown).
    pub emitted: EffectCounts,
}

/// Drains one shard's local events strictly before `window_end`.
///
/// This is the per-worker half of the protocol. It mirrors the classic
/// loop's `on_step_done` + `kick` sequence for everything instance-local
/// (step completion, next-step polling and scheduling, straggler stretch)
/// and buffers everything with cross-shard reach as [`Effect`]s keyed by
/// `(time, instance, emission index)` — nothing shard-count-dependent ever
/// enters a key or a decision.
pub(crate) fn drain_window(shard: &mut ShardState, window_end: SimTime) -> WindowOutbox {
    let mut out = WindowOutbox::default();
    loop {
        match shard.queue.peek_time() {
            Some(t) if t < window_end => {}
            _ => break,
        }
        let ShardState {
            store,
            queue,
            slow_until,
            defer_steps,
            events,
            emitted,
        } = shard;
        let (at, id) = queue.pop().expect("peeked above");
        out.events += 1;
        *events += 1;
        let Some(llumlet) = store.get_mut(id) else {
            continue; // Instance failed or terminated mid-step; stale event.
        };
        let entity = u64::from(id.0);
        let mut seq: u32 = 0;
        let mut emit = |eff: Effect| {
            emitted.count(&eff);
            out.effects.push((EffectKey { at, entity, seq }, eff));
            seq += 1;
        };
        let step_events = llumlet.engine.complete_step(at);
        for state in llumlet.engine.take_finished() {
            emit(Effect::Finished(state));
        }
        for ev in step_events {
            emit(Effect::Engine(ev));
        }
        if !llumlet.is_starting(at) {
            if let Some(plan) = llumlet.engine.poll_step(at) {
                if let StepKind::Decode(ids) = &plan.kind {
                    let has_high = ids.iter().any(|r| {
                        llumlet
                            .engine
                            .state(*r)
                            .is_some_and(|s| s.meta.priority.execution == Priority::High)
                    });
                    if has_high {
                        emit(Effect::HighBatch(ids.len() as f64));
                    }
                }
                let mut finish = plan.finish_at();
                if *defer_steps {
                    let tracked = llumlet.engine.batch_size() + llumlet.engine.waiting_len();
                    emit(Effect::StepPending { tracked, finish });
                } else {
                    out.stall_zeros += 1;
                    if let Some(&(until, factor)) = slow_until.get(&id) {
                        if at < until {
                            finish = at + finish.since(at).mul_f64(factor);
                        }
                    }
                    queue.push_coalesced(finish, id);
                }
            }
            for ev in llumlet.engine.take_pending_events() {
                emit(Effect::Engine(ev));
            }
            for state in llumlet.engine.take_finished() {
                emit(Effect::Finished(state));
            }
        }
        if llumlet.terminating {
            emit(Effect::CheckTermination);
        }
    }
    out
}

/// The fleet, partitioned into shards, presenting the [`InstanceStore`] API
/// the serving loop was written against.
///
/// Classic mode constructs this with one shard, where every operation
/// delegates straight to the single inner store — same walks, same dirty
/// order, same bytes as the pre-shard simulator. Windowed mode constructs K
/// shards; the only K-dependent observable is the order of the combined
/// dirty drain (shard-major), which feeds content-commutative index updates
/// only (DESIGN.md §10.4).
pub(crate) struct ShardedFleet {
    shards: Vec<ShardState>,
    /// Live instances in global insertion order — the deterministic sweep
    /// order, maintained across shards (shard-count independent).
    order: Vec<InstanceId>,
    dirty_tmp: Vec<InstanceId>,
}

impl ShardedFleet {
    /// `k` empty shards; `defer_steps` set for centralized-stall runs.
    pub fn new(k: usize, defer_steps: bool) -> Self {
        assert!(k >= 1, "need at least one shard");
        let mut shards = Vec::with_capacity(k);
        for _ in 0..k {
            shards.push(ShardState {
                defer_steps,
                ..ShardState::default()
            });
        }
        ShardedFleet {
            shards,
            order: Vec::new(),
            dirty_tmp: Vec::new(),
        }
    }

    /// Which shard owns `id`.
    pub fn shard_of(&self, id: InstanceId) -> usize {
        id.0 as usize % self.shards.len()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard state by index (the window runner swaps states in and out).
    pub fn shard_mut(&mut self, i: usize) -> &mut ShardState {
        &mut self.shards[i]
    }

    /// Read-only shard states (teardown reconciliation).
    pub fn shard_states(&self) -> &[ShardState] {
        &self.shards
    }

    /// Number of live instances.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Live instances in global insertion order.
    pub fn order(&self) -> &[InstanceId] {
        &self.order
    }

    /// Whether `id` is live.
    pub fn contains(&self, id: InstanceId) -> bool {
        self.shards[self.shard_of(id)].store.contains(id)
    }

    /// Inserts a new llumlet under `id` (marks it dirty).
    pub fn insert(&mut self, id: InstanceId, llumlet: Llumlet) {
        let s = self.shard_of(id);
        self.shards[s].store.insert(id, llumlet);
        self.order.push(id);
    }

    /// Removes and returns the llumlet under `id`.
    pub fn remove(&mut self, id: InstanceId) -> Option<Llumlet> {
        let s = self.shard_of(id);
        let llumlet = self.shards[s].store.remove(id)?;
        self.order.retain(|&i| i != id);
        Some(llumlet)
    }

    /// Shared access to a llumlet.
    pub fn get(&self, id: InstanceId) -> Option<&Llumlet> {
        self.shards[self.shard_of(id)].store.get(id)
    }

    /// Mutable access to a llumlet (marks it dirty in its shard store).
    pub fn get_mut(&mut self, id: InstanceId) -> Option<&mut Llumlet> {
        let s = self.shard_of(id);
        self.shards[s].store.get_mut(id)
    }

    /// Disjoint mutable access to two distinct instances' engines, possibly
    /// across shards.
    pub fn two_engines(
        &mut self,
        a: InstanceId,
        b: InstanceId,
    ) -> Option<(&mut InstanceEngine, &mut InstanceEngine)> {
        let sa = self.shard_of(a);
        let sb = self.shard_of(b);
        if sa == sb {
            return self.shards[sa].store.two_engines(a, b);
        }
        let (shard_a, shard_b) = if sa < sb {
            let (lo, hi) = self.shards.split_at_mut(sb);
            (&mut lo[sa], &mut hi[0])
        } else {
            let (lo, hi) = self.shards.split_at_mut(sa);
            (&mut hi[0], &mut lo[sb])
        };
        let ea = shard_a.store.get_mut(a)?;
        let eb = shard_b.store.get_mut(b)?;
        Some((&mut ea.engine, &mut eb.engine))
    }

    /// Mutable engine references for every live instance except `excluding`,
    /// keyed by id. Marks every returned instance dirty.
    pub fn peers_mut(
        &mut self,
        excluding: InstanceId,
    ) -> BTreeMap<InstanceId, &mut InstanceEngine> {
        let mut map = BTreeMap::new();
        for shard in &mut self.shards {
            map.extend(shard.store.peers_mut(excluding));
        }
        map
    }

    /// Drains every shard's dirty list into `out`, shard-major. With one
    /// shard this is exactly the store's marking order; with more the
    /// relative order of different shards' entries differs by K, which is
    /// safe because dirty entries feed per-id index updates whose combined
    /// result is order-independent.
    pub fn take_dirty(&mut self, out: &mut Vec<InstanceId>) {
        out.clear();
        for shard in &mut self.shards {
            shard.store.take_dirty(&mut self.dirty_tmp);
            out.extend_from_slice(&self.dirty_tmp);
        }
    }

    /// Iterates live llumlets in global insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (InstanceId, &Llumlet)> {
        self.order.iter().map(move |&id| {
            let l = self.shards[self.shard_of(id)]
                .store
                .get(id)
                .expect("order entries are live");
            (id, l)
        })
    }

    /// Schedules a step completion for `id` in its owning shard's queue.
    pub fn push_local(&mut self, id: InstanceId, at: SimTime) {
        let s = self.shard_of(id);
        self.shards[s].queue.push_coalesced(at, id);
    }

    /// Earliest pending local event across all shards (the next window's
    /// start). A global property: independent of how instances shard.
    pub fn next_local_time(&self) -> Option<SimTime> {
        self.shards.iter().filter_map(|s| s.queue.peek_time()).min()
    }

    /// The straggler factor in force for `id` at `now`, if any.
    pub fn slow_factor(&self, id: InstanceId, now: SimTime) -> Option<f64> {
        self.shards[self.shard_of(id)]
            .slow_until
            .get(&id)
            .and_then(|&(until, factor)| (now < until).then_some(factor))
    }

    /// Applies a slowdown fault: overlapping slowdowns keep the later
    /// expiry and the worse factor.
    pub fn slow_apply(&mut self, id: InstanceId, until: SimTime, factor: f64) {
        let s = self.shard_of(id);
        let entry = self.shards[s]
            .slow_until
            .entry(id)
            .or_insert((SimTime::ZERO, 1.0));
        entry.0 = entry.0.max(until);
        if factor > entry.1 {
            entry.1 = factor;
        }
    }

    /// Clears `id`'s straggler state (instance teardown).
    pub fn slow_remove(&mut self, id: InstanceId) {
        let s = self.shard_of(id);
        self.shards[s].slow_until.remove(&id);
    }

    /// Drops expired slowdown entries across all shards.
    pub fn slow_retain(&mut self, now: SimTime) {
        for shard in &mut self.shards {
            shard.slow_until.retain(|_, &mut (until, _)| until > now);
        }
    }

    /// Lifetime local events popped across all shards.
    pub fn local_events_total(&self) -> u64 {
        self.shards.iter().map(|s| s.events).sum()
    }

    /// Lifetime effects emitted across all shards, by class.
    pub fn emitted_totals(&self) -> EffectCounts {
        let mut total = EffectCounts::default();
        for shard in &self.shards {
            total.add(&shard.emitted);
        }
        total
    }

    /// Structural consistency of the partition: every shard holds exactly
    /// the ids that route to it, and the global order covers exactly the
    /// union of shard members. Panics on violation (teardown guard).
    pub fn check_consistency(&self) {
        let mut shard_members = 0usize;
        for (i, shard) in self.shards.iter().enumerate() {
            for &id in shard.store.order() {
                assert_eq!(
                    self.shard_of(id),
                    i,
                    "instance {id} stored in shard {i} but routes elsewhere"
                );
            }
            shard_members += shard.store.len();
        }
        assert_eq!(
            shard_members,
            self.order.len(),
            "global order and shard membership diverged"
        );
        for &id in &self.order {
            assert!(
                self.contains(id),
                "global order entry {id} missing from its shard"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llumnix_engine::EngineConfig;
    use llumnix_model::InstanceSpec;

    fn llumlet(id: u32) -> Llumlet {
        Llumlet::new(
            InstanceEngine::new(
                InstanceId(id),
                InstanceSpec::tiny_for_tests(256),
                EngineConfig::default(),
            ),
            SimTime::ZERO,
            None,
        )
    }

    #[test]
    fn fleet_routes_by_id_modulo() {
        let mut f = ShardedFleet::new(3, false);
        for i in 0..7 {
            f.insert(InstanceId(i), llumlet(i));
        }
        assert_eq!(f.len(), 7);
        for i in 0..7u32 {
            assert_eq!(f.shard_of(InstanceId(i)), i as usize % 3);
            assert!(f.contains(InstanceId(i)));
            assert_eq!(f.get(InstanceId(i)).unwrap().id(), InstanceId(i));
        }
        f.check_consistency();
        // Global order is insertion order, not shard-major.
        let ids: Vec<u32> = f.order().iter().map(|i| i.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5, 6]);
        f.remove(InstanceId(4));
        assert!(!f.contains(InstanceId(4)));
        assert_eq!(f.len(), 6);
        f.check_consistency();
    }

    #[test]
    fn cross_shard_two_engines() {
        let mut f = ShardedFleet::new(2, false);
        f.insert(InstanceId(0), llumlet(0)); // shard 0
        f.insert(InstanceId(1), llumlet(1)); // shard 1
        f.insert(InstanceId(2), llumlet(2)); // shard 0
        let (a, b) = f.two_engines(InstanceId(0), InstanceId(1)).expect("cross");
        assert_eq!(a.id, InstanceId(0));
        assert_eq!(b.id, InstanceId(1));
        let (b2, a2) = f.two_engines(InstanceId(1), InstanceId(0)).expect("rev");
        assert_eq!(b2.id, InstanceId(1));
        assert_eq!(a2.id, InstanceId(0));
        let (x, y) = f.two_engines(InstanceId(0), InstanceId(2)).expect("same");
        assert_eq!(x.id, InstanceId(0));
        assert_eq!(y.id, InstanceId(2));
        f.remove(InstanceId(1));
        assert!(f.two_engines(InstanceId(0), InstanceId(1)).is_none());
    }

    #[test]
    fn peers_and_dirty_cover_all_shards() {
        let mut f = ShardedFleet::new(2, false);
        for i in 0..4 {
            f.insert(InstanceId(i), llumlet(i));
        }
        let mut dirty = Vec::new();
        f.take_dirty(&mut dirty); // inserts marked everything dirty
        assert_eq!(dirty.len(), 4);
        let peers = f.peers_mut(InstanceId(1));
        let ids: Vec<u32> = peers.keys().map(|i| i.0).collect();
        assert_eq!(ids, vec![0, 2, 3]);
        drop(peers);
        f.take_dirty(&mut dirty);
        assert_eq!(dirty.len(), 3, "peers_mut marks returned instances dirty");
    }

    #[test]
    fn local_queue_routing_and_min() {
        let mut f = ShardedFleet::new(2, false);
        f.insert(InstanceId(0), llumlet(0));
        f.insert(InstanceId(1), llumlet(1));
        assert_eq!(f.next_local_time(), None);
        f.push_local(InstanceId(1), SimTime::from_millis(5));
        f.push_local(InstanceId(0), SimTime::from_millis(3));
        assert_eq!(f.next_local_time(), Some(SimTime::from_millis(3)));
        let popped = f.shard_mut(0).queue.pop().expect("shard 0 event");
        assert_eq!(popped, (SimTime::from_millis(3), InstanceId(0)));
        assert_eq!(f.next_local_time(), Some(SimTime::from_millis(5)));
    }

    #[test]
    fn slowdown_state_routes_and_merges() {
        let mut f = ShardedFleet::new(2, false);
        f.insert(InstanceId(0), llumlet(0));
        let t10 = SimTime::from_secs(10);
        f.slow_apply(InstanceId(0), t10, 2.0);
        // Overlap keeps later expiry and worse factor.
        f.slow_apply(InstanceId(0), SimTime::from_secs(5), 3.0);
        assert_eq!(
            f.slow_factor(InstanceId(0), SimTime::from_secs(1)),
            Some(3.0)
        );
        assert_eq!(f.slow_factor(InstanceId(0), t10), None, "expiry exclusive");
        f.slow_retain(SimTime::from_secs(20));
        assert_eq!(f.slow_factor(InstanceId(0), SimTime::from_secs(1)), None);
    }
}
