//! Sharded fleet state for the conservative time-windowed parallel core.
//!
//! The windowed mode of [`crate::ServingSim`] partitions the fleet across K
//! shards by `instance_id % K`. Each shard owns its instances' slab storage,
//! their engine-step completion chains (a private [`EventQueue`]), and their
//! straggler map — everything a step completion touches without consulting
//! another instance. All cross-instance machinery (dispatch, migration
//! pairing and handshakes, fault firing, sampling, auto-scaling) stays on
//! the coordinator and runs between windows.
//!
//! A window `[t, t + lookahead)` drains every shard's local events —
//! inline or on [`llumnix_sim::ShardPool`] workers — and buffers every
//! cross-shard consequence (finished requests, drain/finish/preempt
//! notifications, deferred central-scheduler decisions) as an [`Effect`]
//! tagged with an [`EffectKey`]. The barrier merges the buffers with
//! [`llumnix_sim::merge_windowed`] and applies them in key order, so the
//! schedule is a pure function of `(seed, config)` — independent of the
//! shard count and of which thread drained which shard. The lookahead is
//! the modeled llumlet ↔ global-scheduler RPC latency: deferring a shard's
//! outbound notifications to the barrier models that latency rather than
//! approximating around it (DESIGN.md §10).

use std::collections::BTreeMap;

use llumnix_engine::{EngineEvent, InstanceEngine, InstanceId, Priority, SeqState, StepKind};
use llumnix_sim::{EffectKey, EventQueue, SimDuration, SimTime};

use crate::index::{DispatchIndex, IndexPolicy, MergedIndex, UpdateOutcome};
use crate::llumlet::Llumlet;
use crate::policy::LoadReport;
use crate::store::InstanceStore;
use crate::virtual_usage::HeadroomConfig;

/// Configuration of the sharded windowed simulation core.
///
/// `None` in [`crate::ServingConfig::shard`] keeps the classic
/// single-queue event loop byte-for-byte unchanged. `Some` switches to the
/// windowed discipline — at *any* shard count, including 1: the windowed
/// core's contract is that its output is identical for every `shards`
/// value, not that it equals the classic loop (the window barrier models
/// the llumlet ↔ scheduler RPC latency the classic loop idealizes away).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardConfig {
    /// Number of shards K (≥ 1).
    pub shards: usize,
    /// Conservative lookahead: the window length, equal to the modeled
    /// llumlet ↔ global-scheduler RPC latency. Cross-shard notifications
    /// emitted inside a window are delivered at its barrier, i.e. after at
    /// most one lookahead — exactly the delay the RPC would impose.
    pub lookahead: SimDuration,
    /// Run shard drains on worker threads even when the host reports a
    /// single CPU (the result is identical either way; this only forces the
    /// parallel code path, e.g. for benches measuring it).
    pub force_parallel: bool,
    /// Window-length autotuning: when consecutive windows are effect-sparse
    /// and the coordinator is provably quiescent (no active migrations, no
    /// terminating or starting instances, no pending global event or arrival
    /// inside the stretched span), the runner widens windows to integer
    /// multiples of the lookahead, cutting barrier count on quiet fleets.
    /// The stretch gates make it unobservable: the schedule is byte-identical
    /// with autotuning on or off (and at any shard count either way).
    pub autotune: bool,
}

impl ShardConfig {
    /// Windowed core with `shards` shards and the default lookahead.
    ///
    /// The default lookahead is 2 ms: the scale of one actor-RPC round
    /// between a llumlet and the global scheduler in the modeled deployment
    /// (well under the 20 ms migration commit pause and the ≥ 100 ms
    /// dispatch/pairing cadences that dominate cross-instance causality;
    /// comfortably over the 50 µs per-message transfer overhead that models
    /// intra-migration messaging, which never crosses shards mid-handshake).
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        ShardConfig {
            shards,
            lookahead: SimDuration::from_millis(2),
            force_parallel: false,
            autotune: true,
        }
    }

    /// Overrides the lookahead.
    pub fn with_lookahead(mut self, lookahead: SimDuration) -> Self {
        self.lookahead = lookahead;
        self
    }

    /// Forces worker-thread drains regardless of host parallelism.
    pub fn with_force_parallel(mut self) -> Self {
        self.force_parallel = true;
        self
    }

    /// Enables or disables window-length autotuning (on by default; the
    /// schedule is identical either way — this only trades barrier count
    /// against window granularity).
    pub fn with_autotune(mut self, autotune: bool) -> Self {
        self.autotune = autotune;
        self
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig::new(4)
    }
}

/// Per-window shard-balance statistics of one windowed run: how lopsided the
/// busiest shard is relative to a perfectly balanced window. A window's
/// imbalance ratio is `busiest / (total / due_shards)` — 1.0 means every due
/// shard drained the same number of events, K means one shard did all the
/// work. The ratio explains `measured_speedup` shortfalls: a high mean points
/// at partition skew, a low mean with low `speedup` points at barrier
/// overhead (many tiny windows) instead. Tracked in integer arithmetic only
/// (the running max cross-multiplies in u128); floats materialize at output.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Conservative windows run.
    pub windows: u64,
    /// Σ busiest-shard events over all windows (the windowed share of the
    /// critical path).
    pub busiest_events: u64,
    /// Σ events drained across all due shards over all windows.
    pub total_events: u64,
    /// Σ busiest × due-shard-count: numerator of the event-weighted mean
    /// imbalance ratio (denominator is `total_events`).
    weighted_num: u64,
    /// Worst single window's ratio, kept as the exact fraction
    /// (busiest × due, total).
    max_num: u64,
    max_den: u64,
}

impl WindowStats {
    /// Folds one window: its busiest shard's event count, the number of due
    /// shards, and the total events drained.
    pub(crate) fn record(&mut self, busiest: u64, due: u64, total: u64) {
        if total == 0 {
            return;
        }
        self.windows += 1;
        self.busiest_events += busiest;
        self.total_events += total;
        let num = busiest * due;
        self.weighted_num += num;
        if self.max_den == 0
            || u128::from(num) * u128::from(self.max_den)
                > u128::from(self.max_num) * u128::from(total)
        {
            self.max_num = num;
            self.max_den = total;
        }
    }

    /// The worst window's busiest-shard ratio (1.0 = balanced, K = one shard
    /// did everything). 0.0 if no window ran.
    pub fn imbalance_max(&self) -> f64 {
        if self.max_den == 0 {
            0.0
        } else {
            self.max_num as f64 / self.max_den as f64
        }
    }

    /// Event-weighted mean busiest-shard ratio across windows.
    pub fn imbalance_mean(&self) -> f64 {
        if self.total_events == 0 {
            0.0
        } else {
            self.weighted_num as f64 / self.total_events as f64
        }
    }
}

/// Entity-key base for arrival effects: request ids live in a namespace
/// above every possible instance id (instance entities are `u32` values), so
/// arrival keys can never collide with instance keys and — at equal
/// timestamps — sort after them, a fixed shard-count-independent order.
pub(crate) const ARRIVAL_ENTITY_BASE: u64 = 1 << 32;

/// A cross-shard consequence of shard-local work, applied at the barrier.
#[derive(Debug)]
pub(crate) enum Effect {
    /// A request arrived (pre-partitioned arrival stream, owned by shard
    /// `request_id mod K`). The payload is the trace index; the coordinator
    /// dispatches it at the barrier — the arrival → dispatch hop rides the
    /// same modeled frontend → scheduler RPC as every other effect.
    Arrival(usize),
    /// A request reached a terminal state (`take_finished` entry).
    Finished(SeqState),
    /// An engine event the coordinator must route (migration aborts on
    /// finish/preempt, drain handoffs, abort counting).
    Engine(EngineEvent),
    /// A decode step containing a high-execution-priority request ran with
    /// this batch size (the §6.4 isolation diagnostic; observed at the
    /// barrier so the accumulator's float sum sees one canonical order).
    HighBatch(f64),
    /// Centralized-scheduler mode: the shard polled a step but its start
    /// awaits the central scheduler's decision. The barrier replays these
    /// through the single FIFO stall model in canonical order and schedules
    /// the completion back into the owning shard.
    StepPending {
        /// Requests whose status the decision synchronizes.
        tracked: usize,
        /// Step finish time before the central stall is added.
        finish: SimTime,
    },
    /// The instance is terminating; the coordinator re-checks whether it
    /// can now be retired.
    CheckTermination,
}

/// Per-class counters over [`Effect`] traffic. Shards count what they emit;
/// the coordinator counts what it applies; teardown asserts the ledgers
/// reconcile (the honest-accounting guard for the cross-shard protocol).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EffectCounts {
    pub arrivals: u64,
    pub finished: u64,
    pub engine: u64,
    pub high_batch: u64,
    pub steps: u64,
    pub termination: u64,
}

impl EffectCounts {
    pub(crate) fn count(&mut self, effect: &Effect) {
        match effect {
            Effect::Arrival(_) => self.arrivals += 1,
            Effect::Finished(_) => self.finished += 1,
            Effect::Engine(_) => self.engine += 1,
            Effect::HighBatch(_) => self.high_batch += 1,
            Effect::StepPending { .. } => self.steps += 1,
            Effect::CheckTermination => self.termination += 1,
        }
    }

    /// Total effects across every class.
    pub(crate) fn total(&self) -> u64 {
        self.arrivals
            + self.finished
            + self.engine
            + self.high_batch
            + self.steps
            + self.termination
    }

    fn add(&mut self, other: &EffectCounts) {
        self.arrivals += other.arrivals;
        self.finished += other.finished;
        self.engine += other.engine;
        self.high_batch += other.high_batch;
        self.steps += other.steps;
        self.termination += other.termination;
    }
}

/// What one shard hands back from one window drain.
#[derive(Debug, Default)]
pub(crate) struct WindowOutbox {
    /// Buffered cross-shard effects, in emission order (sorted by key:
    /// local pops are time-ordered and `seq` orders within an episode).
    pub effects: Vec<(EffectKey, Effect)>,
    /// Zero-stall observations owed to the stall summary (one per polled
    /// step outside centralized mode). Zeros are order-free in the
    /// accumulator, so a count suffices.
    pub stall_zeros: u64,
    /// Local events popped during this window (stale pops included).
    pub events: u64,
    /// Instances whose end-of-window partition refresh saw them enter their
    /// startup delay; the coordinator queues their online re-check at the
    /// barrier (content feeds a set-semantics sweep, so the shard-major
    /// collection order is immaterial).
    pub starting: Vec<InstanceId>,
    /// The reports the end-of-window refresh applied to this shard's
    /// partition; debug builds mirror them into the monolithic cross-check
    /// index at the barrier so both sides index byte-identical values.
    #[cfg(debug_assertions)]
    pub refreshed: Vec<LoadReport>,
}

/// One shard: its instances, their step-completion chains, their straggler
/// state, its dispatch-index partition, and its lifetime emission ledgers.
/// `Clone` supports the sim-level snapshot/fork capability.
#[derive(Clone)]
pub(crate) struct ShardState {
    /// Slab of this shard's llumlets.
    pub store: InstanceStore,
    /// Shard-local event queue; payloads are instance ids whose step
    /// completes at the scheduled time. Carries the same debug shadow-heap
    /// cross-check as the global queue.
    pub queue: EventQueue<InstanceId>,
    /// Straggling instances of this shard: id → (expiry, latency factor).
    pub slow_until: BTreeMap<InstanceId, (SimTime, f64)>,
    /// Centralized mode: polled steps defer to the barrier instead of
    /// scheduling locally.
    pub defer_steps: bool,
    /// Pre-partitioned arrival stream of this shard, time-ordered:
    /// `(arrival, trace index, request id)` for every trace request whose id
    /// routes here (`request_id mod K`). Filled once at setup; `drain_window`
    /// consumes it through `arrival_cursor` and emits [`Effect::Arrival`]s.
    pub arrivals: Vec<(SimTime, usize, u64)>,
    /// Next unconsumed entry of `arrivals`.
    pub arrival_cursor: usize,
    /// This shard's dispatch-index partition: the orderings of
    /// [`DispatchIndex`] restricted to instances that route here, maintained
    /// from this shard's dirty set at each window end. Decisions read the
    /// canonical k-way merge ([`ShardedFleet::merged_index`]).
    pub index: DispatchIndex,
    /// Headroom config the partition refresh computes reports under (the
    /// run's effective config, copied at setup).
    pub headroom: HeadroomConfig,
    /// Whether `drain_window` folds the dirty set into the partition at the
    /// window end. Off in classic mode and under the `Gradual` queuing rule
    /// (whose reports drift with bare time; the coordinator full-sweeps at
    /// each decision instead).
    pub refresh_partition: bool,
    /// Lifetime local events popped (reconciled at teardown).
    pub events: u64,
    /// Lifetime effects emitted by class (reconciled at teardown).
    pub emitted: EffectCounts,
    /// Scratch buffer for the end-of-window dirty drain.
    dirty_tmp: Vec<InstanceId>,
}

impl Default for ShardState {
    fn default() -> Self {
        ShardState {
            store: InstanceStore::default(),
            queue: EventQueue::default(),
            slow_until: BTreeMap::new(),
            defer_steps: false,
            arrivals: Vec::new(),
            arrival_cursor: 0,
            index: DispatchIndex::default(),
            headroom: HeadroomConfig::DISABLED,
            refresh_partition: false,
            events: 0,
            emitted: EffectCounts::default(),
            dirty_tmp: Vec::new(),
        }
    }
}

impl ShardState {
    /// When this shard's next arrival lands, if any remain.
    pub fn next_arrival_time(&self) -> Option<SimTime> {
        self.arrivals.get(self.arrival_cursor).map(|&(at, _, _)| at)
    }

    /// Earliest pending local work: the sooner of the next step completion
    /// and the next arrival.
    pub fn peek_time(&self) -> Option<SimTime> {
        match (self.queue.peek_time(), self.next_arrival_time()) {
            (Some(q), Some(a)) => Some(q.min(a)),
            (q, a) => q.or(a),
        }
    }
}

/// Drains one shard's local events strictly before `window_end`.
///
/// This is the per-worker half of the protocol. It mirrors the classic
/// loop's `on_step_done` + `kick` sequence for everything instance-local
/// (step completion, next-step polling and scheduling, straggler stretch)
/// and buffers everything with cross-shard reach as [`Effect`]s keyed by
/// `(time, instance, emission index)` — nothing shard-count-dependent ever
/// enters a key or a decision.
pub(crate) fn drain_window(shard: &mut ShardState, window_end: SimTime) -> WindowOutbox {
    let mut out = WindowOutbox::default();
    loop {
        // Arrivals and step completions drain in shard-local time order;
        // arrivals first on a tie (their effect keys sort after instance
        // keys anyway, so the local tie-break never reaches the barrier).
        let take_arrival = match (shard.next_arrival_time(), shard.queue.peek_time()) {
            (None, None) => break,
            (Some(a), None) if a < window_end => true,
            (None, Some(q)) if q < window_end => false,
            (Some(a), Some(q)) if a.min(q) < window_end => a <= q,
            _ => break,
        };
        if take_arrival {
            let (at, index, rid) = shard.arrivals[shard.arrival_cursor];
            shard.arrival_cursor += 1;
            out.events += 1;
            shard.events += 1;
            let eff = Effect::Arrival(index);
            shard.emitted.count(&eff);
            out.effects.push((
                EffectKey {
                    at,
                    entity: ARRIVAL_ENTITY_BASE + rid,
                    seq: 0,
                },
                eff,
            ));
            continue;
        }
        let ShardState {
            store,
            queue,
            slow_until,
            defer_steps,
            events,
            emitted,
            ..
        } = shard;
        let (at, id) = queue.pop().expect("peeked above");
        out.events += 1;
        *events += 1;
        let Some(llumlet) = store.get_mut(id) else {
            continue; // Instance failed or terminated mid-step; stale event.
        };
        let entity = u64::from(id.0);
        let mut seq: u32 = 0;
        let mut emit = |eff: Effect| {
            emitted.count(&eff);
            out.effects.push((EffectKey { at, entity, seq }, eff));
            seq += 1;
        };
        let step_events = llumlet.engine.complete_step(at);
        for state in llumlet.engine.take_finished() {
            emit(Effect::Finished(state));
        }
        for ev in step_events {
            emit(Effect::Engine(ev));
        }
        if !llumlet.is_starting(at) {
            if let Some(plan) = llumlet.engine.poll_step(at) {
                if let StepKind::Decode(ids) = &plan.kind {
                    let has_high = ids.iter().any(|r| {
                        llumlet
                            .engine
                            .state(*r)
                            .is_some_and(|s| s.meta.priority.execution == Priority::High)
                    });
                    if has_high {
                        emit(Effect::HighBatch(ids.len() as f64));
                    }
                }
                let mut finish = plan.finish_at();
                if *defer_steps {
                    let tracked = llumlet.engine.batch_size() + llumlet.engine.waiting_len();
                    emit(Effect::StepPending { tracked, finish });
                } else {
                    out.stall_zeros += 1;
                    if let Some(&(until, factor)) = slow_until.get(&id) {
                        if at < until {
                            finish = at + finish.since(at).mul_f64(factor);
                        }
                    }
                    queue.push_coalesced(finish, id);
                }
            }
            for ev in llumlet.engine.take_pending_events() {
                emit(Effect::Engine(ev));
            }
            for state in llumlet.engine.take_finished() {
                emit(Effect::Finished(state));
            }
        }
        if llumlet.terminating {
            emit(Effect::CheckTermination);
        }
    }
    // Shard-local index maintenance: fold this shard's dirty set into its
    // partition at the window end. The reports computed here are cached on
    // each llumlet, so the coordinator's residual sweep at a later `now`
    // reads these exact values back (reports are now-independent outside
    // the Gradual rule, under which this refresh is disabled).
    if shard.refresh_partition {
        let mut dirty = std::mem::take(&mut shard.dirty_tmp);
        shard.store.take_dirty(&mut dirty);
        for &id in &dirty {
            match shard.store.get(id) {
                Some(l) => {
                    let report = l.report(window_end, &shard.headroom);
                    if shard.index.update(&report).became_starting {
                        out.starting.push(id);
                    }
                    #[cfg(debug_assertions)]
                    out.refreshed.push(report);
                }
                // Stale dirty entry: the coordinator removed the instance
                // (and its partition entry) mid-window.
                None => shard.index.remove(id),
            }
        }
        shard.dirty_tmp = dirty;
    }
    out
}

/// The fleet, partitioned into shards, presenting the [`InstanceStore`] API
/// the serving loop was written against.
///
/// Classic mode constructs this with one shard, where every operation
/// delegates straight to the single inner store — same walks, same dirty
/// order, same bytes as the pre-shard simulator. Windowed mode constructs K
/// shards; the only K-dependent observable is the order of the combined
/// dirty drain (shard-major), which feeds content-commutative index updates
/// only (DESIGN.md §10.4).
/// `Clone` supports the sim-level snapshot/fork capability.
#[derive(Clone)]
pub(crate) struct ShardedFleet {
    shards: Vec<ShardState>,
    /// Live instances in global insertion order — the deterministic sweep
    /// order, maintained across shards (shard-count independent).
    order: Vec<InstanceId>,
    dirty_tmp: Vec<InstanceId>,
}

impl ShardedFleet {
    /// `k` empty shards; `defer_steps` set for centralized-stall runs.
    pub fn new(k: usize, defer_steps: bool) -> Self {
        assert!(k >= 1, "need at least one shard");
        let mut shards = Vec::with_capacity(k);
        for _ in 0..k {
            shards.push(ShardState {
                defer_steps,
                ..ShardState::default()
            });
        }
        ShardedFleet {
            shards,
            order: Vec::new(),
            dirty_tmp: Vec::new(),
        }
    }

    /// Which shard owns `id`.
    pub fn shard_of(&self, id: InstanceId) -> usize {
        id.0 as usize % self.shards.len()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard state by index (the window runner swaps states in and out).
    pub fn shard_mut(&mut self, i: usize) -> &mut ShardState {
        &mut self.shards[i]
    }

    /// Read-only shard states (teardown reconciliation).
    pub fn shard_states(&self) -> &[ShardState] {
        &self.shards
    }

    /// Number of live instances.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Live instances in global insertion order.
    pub fn order(&self) -> &[InstanceId] {
        &self.order
    }

    /// Whether `id` is live.
    pub fn contains(&self, id: InstanceId) -> bool {
        self.shards[self.shard_of(id)].store.contains(id)
    }

    /// Inserts a new llumlet under `id` (marks it dirty).
    pub fn insert(&mut self, id: InstanceId, llumlet: Llumlet) {
        let s = self.shard_of(id);
        self.shards[s].store.insert(id, llumlet);
        self.order.push(id);
    }

    /// Removes and returns the llumlet under `id`, dropping it from its
    /// shard's index partition as well.
    pub fn remove(&mut self, id: InstanceId) -> Option<Llumlet> {
        let s = self.shard_of(id);
        let llumlet = self.shards[s].store.remove(id)?;
        self.shards[s].index.remove(id);
        self.order.retain(|&i| i != id);
        Some(llumlet)
    }

    /// Shared access to a llumlet.
    pub fn get(&self, id: InstanceId) -> Option<&Llumlet> {
        self.shards[self.shard_of(id)].store.get(id)
    }

    /// Mutable access to a llumlet (marks it dirty in its shard store).
    pub fn get_mut(&mut self, id: InstanceId) -> Option<&mut Llumlet> {
        let s = self.shard_of(id);
        self.shards[s].store.get_mut(id)
    }

    /// Disjoint mutable access to two distinct instances' engines, possibly
    /// across shards.
    pub fn two_engines(
        &mut self,
        a: InstanceId,
        b: InstanceId,
    ) -> Option<(&mut InstanceEngine, &mut InstanceEngine)> {
        let sa = self.shard_of(a);
        let sb = self.shard_of(b);
        if sa == sb {
            return self.shards[sa].store.two_engines(a, b);
        }
        let (shard_a, shard_b) = if sa < sb {
            let (lo, hi) = self.shards.split_at_mut(sb);
            (&mut lo[sa], &mut hi[0])
        } else {
            let (lo, hi) = self.shards.split_at_mut(sa);
            (&mut hi[0], &mut lo[sb])
        };
        let ea = shard_a.store.get_mut(a)?;
        let eb = shard_b.store.get_mut(b)?;
        Some((&mut ea.engine, &mut eb.engine))
    }

    /// Mutable engine references for every live instance except `excluding`,
    /// keyed by id. Marks every returned instance dirty.
    pub fn peers_mut(
        &mut self,
        excluding: InstanceId,
    ) -> BTreeMap<InstanceId, &mut InstanceEngine> {
        let mut map = BTreeMap::new();
        for shard in &mut self.shards {
            map.extend(shard.store.peers_mut(excluding));
        }
        map
    }

    /// Drains every shard's dirty list into `out`, shard-major. With one
    /// shard this is exactly the store's marking order; with more the
    /// relative order of different shards' entries differs by K, which is
    /// safe because dirty entries feed per-id index updates whose combined
    /// result is order-independent.
    pub fn take_dirty(&mut self, out: &mut Vec<InstanceId>) {
        out.clear();
        for shard in &mut self.shards {
            shard.store.take_dirty(&mut self.dirty_tmp);
            out.extend_from_slice(&self.dirty_tmp);
        }
    }

    /// Iterates live llumlets in global insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (InstanceId, &Llumlet)> {
        self.order.iter().map(move |&id| {
            let l = self.shards[self.shard_of(id)]
                .store
                .get(id)
                .expect("order entries are live");
            (id, l)
        })
    }

    /// Schedules a step completion for `id` in its owning shard's queue.
    pub fn push_local(&mut self, id: InstanceId, at: SimTime) {
        let s = self.shard_of(id);
        self.shards[s].queue.push_coalesced(at, id);
    }

    /// Earliest pending local work across all shards — step completions and
    /// pre-partitioned arrivals (the next window's start). A global property:
    /// independent of how instances or requests shard.
    pub fn next_local_time(&self) -> Option<SimTime> {
        self.shards.iter().filter_map(ShardState::peek_time).min()
    }

    /// Earliest unconsumed arrival across all shards. Equals the original
    /// trace's next arrival (partitioning never reorders a time-sorted
    /// stream); the window autotuner uses it to keep stretched windows clear
    /// of dispatch work.
    pub fn next_arrival_time(&self) -> Option<SimTime> {
        self.shards
            .iter()
            .filter_map(ShardState::next_arrival_time)
            .min()
    }

    /// Appends one trace arrival to its owning shard's stream (owner =
    /// `request_id mod K`, a pure function of the id). Must be called in
    /// trace order: each shard's stream stays time-sorted because the trace
    /// is.
    pub fn seed_arrival(&mut self, at: SimTime, index: usize, request_id: u64) {
        let s = (request_id % self.shards.len() as u64) as usize;
        debug_assert!(
            self.shards[s]
                .arrivals
                .last()
                .is_none_or(|&(prev, _, _)| prev <= at),
            "arrival streams must be seeded in time order"
        );
        self.shards[s].arrivals.push((at, index, request_id));
    }

    /// Configures every shard's dispatch-index partition: the run's index
    /// policy and headroom, and whether `drain_window` maintains the
    /// partition from the shard's dirty set (windowed mode outside the
    /// Gradual rule).
    pub fn configure_partitions(
        &mut self,
        policy: IndexPolicy,
        headroom: HeadroomConfig,
        refresh: bool,
    ) {
        for shard in &mut self.shards {
            shard.index = DispatchIndex::new(policy);
            shard.headroom = headroom;
            shard.refresh_partition = refresh;
        }
    }

    /// The canonical k-way merged read view over the shard partitions, with
    /// the fleet's insertion-order walk as the round-robin order.
    pub fn merged_index(&self) -> MergedIndex<'_> {
        MergedIndex::new(self.shards.iter().map(|s| &s.index).collect(), &self.order)
    }

    /// Applies a coordinator-side report to the owning shard's partition
    /// (the residual refresh path: instances the coordinator itself dirtied
    /// between windows).
    pub fn partition_update(&mut self, report: &LoadReport) -> UpdateOutcome {
        let s = self.shard_of(report.id);
        self.shards[s].index.update(report)
    }

    /// The straggler factor in force for `id` at `now`, if any.
    pub fn slow_factor(&self, id: InstanceId, now: SimTime) -> Option<f64> {
        self.shards[self.shard_of(id)]
            .slow_until
            .get(&id)
            .and_then(|&(until, factor)| (now < until).then_some(factor))
    }

    /// Applies a slowdown fault: overlapping slowdowns keep the later
    /// expiry and the worse factor.
    pub fn slow_apply(&mut self, id: InstanceId, until: SimTime, factor: f64) {
        let s = self.shard_of(id);
        let entry = self.shards[s]
            .slow_until
            .entry(id)
            .or_insert((SimTime::ZERO, 1.0));
        entry.0 = entry.0.max(until);
        if factor > entry.1 {
            entry.1 = factor;
        }
    }

    /// Clears `id`'s straggler state (instance teardown).
    pub fn slow_remove(&mut self, id: InstanceId) {
        let s = self.shard_of(id);
        self.shards[s].slow_until.remove(&id);
    }

    /// Drops expired slowdown entries across all shards.
    pub fn slow_retain(&mut self, now: SimTime) {
        for shard in &mut self.shards {
            shard.slow_until.retain(|_, &mut (until, _)| until > now);
        }
    }

    /// Lifetime local events popped across all shards.
    pub fn local_events_total(&self) -> u64 {
        self.shards.iter().map(|s| s.events).sum()
    }

    /// Lifetime effects emitted across all shards, by class.
    pub fn emitted_totals(&self) -> EffectCounts {
        let mut total = EffectCounts::default();
        for shard in &self.shards {
            total.add(&shard.emitted);
        }
        total
    }

    /// Structural consistency of the partition: every shard holds exactly
    /// the ids that route to it, and the global order covers exactly the
    /// union of shard members. Panics on violation (teardown guard).
    pub fn check_consistency(&self) {
        let mut shard_members = 0usize;
        for (i, shard) in self.shards.iter().enumerate() {
            for &id in shard.store.order() {
                assert_eq!(
                    self.shard_of(id),
                    i,
                    "instance {id} stored in shard {i} but routes elsewhere"
                );
            }
            shard_members += shard.store.len();
        }
        assert_eq!(
            shard_members,
            self.order.len(),
            "global order and shard membership diverged"
        );
        for &id in &self.order {
            assert!(
                self.contains(id),
                "global order entry {id} missing from its shard"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llumnix_engine::EngineConfig;
    use llumnix_model::InstanceSpec;

    fn llumlet(id: u32) -> Llumlet {
        Llumlet::new(
            InstanceEngine::new(
                InstanceId(id),
                InstanceSpec::tiny_for_tests(256),
                EngineConfig::default(),
            ),
            SimTime::ZERO,
            None,
        )
    }

    #[test]
    fn fleet_routes_by_id_modulo() {
        let mut f = ShardedFleet::new(3, false);
        for i in 0..7 {
            f.insert(InstanceId(i), llumlet(i));
        }
        assert_eq!(f.len(), 7);
        for i in 0..7u32 {
            assert_eq!(f.shard_of(InstanceId(i)), i as usize % 3);
            assert!(f.contains(InstanceId(i)));
            assert_eq!(f.get(InstanceId(i)).unwrap().id(), InstanceId(i));
        }
        f.check_consistency();
        // Global order is insertion order, not shard-major.
        let ids: Vec<u32> = f.order().iter().map(|i| i.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5, 6]);
        f.remove(InstanceId(4));
        assert!(!f.contains(InstanceId(4)));
        assert_eq!(f.len(), 6);
        f.check_consistency();
    }

    #[test]
    fn cross_shard_two_engines() {
        let mut f = ShardedFleet::new(2, false);
        f.insert(InstanceId(0), llumlet(0)); // shard 0
        f.insert(InstanceId(1), llumlet(1)); // shard 1
        f.insert(InstanceId(2), llumlet(2)); // shard 0
        let (a, b) = f.two_engines(InstanceId(0), InstanceId(1)).expect("cross");
        assert_eq!(a.id, InstanceId(0));
        assert_eq!(b.id, InstanceId(1));
        let (b2, a2) = f.two_engines(InstanceId(1), InstanceId(0)).expect("rev");
        assert_eq!(b2.id, InstanceId(1));
        assert_eq!(a2.id, InstanceId(0));
        let (x, y) = f.two_engines(InstanceId(0), InstanceId(2)).expect("same");
        assert_eq!(x.id, InstanceId(0));
        assert_eq!(y.id, InstanceId(2));
        f.remove(InstanceId(1));
        assert!(f.two_engines(InstanceId(0), InstanceId(1)).is_none());
    }

    #[test]
    fn peers_and_dirty_cover_all_shards() {
        let mut f = ShardedFleet::new(2, false);
        for i in 0..4 {
            f.insert(InstanceId(i), llumlet(i));
        }
        let mut dirty = Vec::new();
        f.take_dirty(&mut dirty); // inserts marked everything dirty
        assert_eq!(dirty.len(), 4);
        let peers = f.peers_mut(InstanceId(1));
        let ids: Vec<u32> = peers.keys().map(|i| i.0).collect();
        assert_eq!(ids, vec![0, 2, 3]);
        drop(peers);
        f.take_dirty(&mut dirty);
        assert_eq!(dirty.len(), 3, "peers_mut marks returned instances dirty");
    }

    #[test]
    fn local_queue_routing_and_min() {
        let mut f = ShardedFleet::new(2, false);
        f.insert(InstanceId(0), llumlet(0));
        f.insert(InstanceId(1), llumlet(1));
        assert_eq!(f.next_local_time(), None);
        f.push_local(InstanceId(1), SimTime::from_millis(5));
        f.push_local(InstanceId(0), SimTime::from_millis(3));
        assert_eq!(f.next_local_time(), Some(SimTime::from_millis(3)));
        let popped = f.shard_mut(0).queue.pop().expect("shard 0 event");
        assert_eq!(popped, (SimTime::from_millis(3), InstanceId(0)));
        assert_eq!(f.next_local_time(), Some(SimTime::from_millis(5)));
    }

    #[test]
    fn slowdown_state_routes_and_merges() {
        let mut f = ShardedFleet::new(2, false);
        f.insert(InstanceId(0), llumlet(0));
        let t10 = SimTime::from_secs(10);
        f.slow_apply(InstanceId(0), t10, 2.0);
        // Overlap keeps later expiry and worse factor.
        f.slow_apply(InstanceId(0), SimTime::from_secs(5), 3.0);
        assert_eq!(
            f.slow_factor(InstanceId(0), SimTime::from_secs(1)),
            Some(3.0)
        );
        assert_eq!(f.slow_factor(InstanceId(0), t10), None, "expiry exclusive");
        f.slow_retain(SimTime::from_secs(20));
        assert_eq!(f.slow_factor(InstanceId(0), SimTime::from_secs(1)), None);
    }

    /// Seeds `arrivals` (trace order) into a `K`-shard fleet and replays the
    /// full expansion the windowed core performs: repeated `drain_window`
    /// calls per shard, each window's effect buffers merged at the barrier.
    /// Returns the merged arrival stream as `(key, trace index)`.
    fn expand_arrivals(
        arrivals: &[(SimTime, usize, u64)],
        k: usize,
        window: SimDuration,
    ) -> Vec<(EffectKey, usize)> {
        let mut fleet = ShardedFleet::new(k, false);
        for &(at, index, rid) in arrivals {
            fleet.seed_arrival(at, index, rid);
        }
        let mut out = Vec::new();
        while let Some(start) = fleet.next_local_time() {
            let end = start + window;
            let buffers: Vec<_> = (0..k)
                .map(|s| drain_window(fleet.shard_mut(s), end).effects)
                .collect();
            for (key, eff) in llumnix_sim::merge_windowed(buffers) {
                match eff {
                    Effect::Arrival(index) => out.push((key, index)),
                    other => panic!("arrival-only stream emitted {other:?}"),
                }
            }
        }
        out
    }

    proptest::proptest! {
        /// Pre-partitioned arrival expansion is shard-count and
        /// window-length independent: seeding a time-sorted trace through
        /// `seed_arrival` at any K and draining it window by window through
        /// the barrier merge reproduces the single-queue (K = 1) stream
        /// exactly — same keys, same trace indices — including
        /// same-timestamp coalesced buckets, which always surface in
        /// request-id order.
        #[test]
        fn partitioned_arrival_expansion_matches_single_queue(
            gap_ms in proptest::collection::vec(0u64..3, 1..120),
        ) {
            use proptest::prelude::prop_assert_eq;
            // Many zero gaps → plenty of same-timestamp buckets. Request
            // ids are a non-monotone permutation (odd-multiplier bijection
            // on u32), so bucket order genuinely rests on the entity key,
            // not on seeding order.
            let mut at = SimTime::ZERO;
            let mut arrivals: Vec<(SimTime, usize, u64)> = Vec::new();
            for (i, &gap) in gap_ms.iter().enumerate() {
                at += SimDuration::from_millis(gap);
                let rid = (i as u64).wrapping_mul(0x9E37_79B1) & 0xFFFF_FFFF;
                arrivals.push((at, i, rid));
            }
            let reference = expand_arrivals(&arrivals, 1, SimDuration::from_millis(2));
            prop_assert_eq!(reference.len(), arrivals.len());
            // The single queue surfaces every arrival in strict key order:
            // time first, request id within a coalesced bucket.
            for pair in reference.windows(2) {
                assert!(pair[0].0 < pair[1].0, "keys must strictly increase");
            }
            for (k, window_ms) in [(2, 3), (3, 2), (5, 1), (8, 4)] {
                let got = expand_arrivals(&arrivals, k, SimDuration::from_millis(window_ms));
                prop_assert_eq!(&got, &reference, "K = {}, window = {} ms", k, window_ms);
            }
        }
    }
}
