//! The llumlet: Llumnix's per-instance scheduler (§4.3).
//!
//! Each llumlet wraps one engine instance and owns the instance-local pieces
//! of the design: computing the load (virtual-usage-based freeness) that it
//! reports to the global scheduler, and choosing which request to migrate
//! when the global scheduler marks its instance as a migration source.

use std::cell::Cell;

use llumnix_engine::{InstanceEngine, InstanceId, RequestId};
use llumnix_sim::SimTime;

use crate::policy::{LoadReport, VictimPolicy};
use crate::virtual_usage::{engine_freeness, infaas_memory_load, HeadroomConfig, QueuingRule};

/// One instance plus its local scheduler state.
///
/// `Clone` supports the sim-level snapshot/fork capability; the memoized
/// report cache is `Copy` inside a `Cell`, so the clone keeps the warm cache.
#[derive(Clone)]
pub struct Llumlet {
    /// The wrapped engine.
    pub engine: InstanceEngine,
    /// Draining for termination (the Algorithm 1 fake request).
    pub terminating: bool,
    /// Still starting up until this time (auto-scaling launch delay).
    pub starting_until: Option<SimTime>,
    /// When this instance was launched (cost accounting).
    pub launched_at: SimTime,
    report_cache: Cell<Option<CachedReport>>,
}

/// Key and value of the memoized load report. Everything a report depends on
/// is in the key: the engine's mutation counter, the `terminating` flag
/// (a public field serving can flip directly, so it cannot be invalidated
/// through engine mutations), the headroom config in force, and — only when
/// the report is time-sensitive — the query time. The `starting` flag is
/// excluded: it feeds no load signal and is re-derived per call.
#[derive(Clone, Copy)]
struct CachedReport {
    version: u64,
    terminating: bool,
    headroom: HeadroomConfig,
    now: Option<SimTime>,
    report: LoadReport,
}

impl Llumlet {
    /// Wraps an engine launched at `launched_at`, serving from
    /// `starting_until` (or immediately if `None`).
    pub fn new(
        engine: InstanceEngine,
        launched_at: SimTime,
        starting_until: Option<SimTime>,
    ) -> Self {
        Llumlet {
            engine,
            terminating: false,
            starting_until,
            launched_at,
            report_cache: Cell::new(None),
        }
    }

    /// The wrapped instance's id.
    pub fn id(&self) -> InstanceId {
        self.engine.id
    }

    /// Whether the instance is still in its startup delay at `now`.
    pub fn is_starting(&self, now: SimTime) -> bool {
        self.starting_until.is_some_and(|t| now < t)
    }

    /// Builds this instance's load report (§4.3: llumlets report
    /// instance-level metrics only, never per-request state).
    ///
    /// Reports are cached per llumlet and recomputed only when the engine
    /// mutated since the last query (its version counter moved), the
    /// termination flag or headroom config changed, or — for time-sensitive
    /// reports — time advanced. This keeps the global scheduler's
    /// every-dispatch and every-tick sweeps over the whole fleet from
    /// rescanning instances that saw no event in between.
    pub fn report(&self, now: SimTime, headroom: &HeadroomConfig) -> LoadReport {
        // Queuing demand under the `Gradual` rule ramps with waiting time, so
        // such a report is only valid at the instant it was computed; every
        // other configuration depends solely on engine state.
        let time_sensitive = matches!(headroom.queuing_rule, QueuingRule::Gradual { .. })
            && self.engine.waiting_len() > 0;
        if let Some(cached) = self.report_cache.get() {
            if cached.version == self.engine.version()
                && cached.terminating == self.terminating
                && cached.headroom == *headroom
                && (!time_sensitive || cached.now == Some(now))
            {
                let mut report = cached.report;
                report.starting = self.is_starting(now);
                return report;
            }
        }
        let report = self.report_fresh(now, headroom);
        self.report_cache.set(Some(CachedReport {
            version: self.engine.version(),
            terminating: self.terminating,
            headroom: *headroom,
            now: time_sensitive.then_some(now),
            report,
        }));
        report
    }

    /// Builds the load report from scratch, bypassing the cache (the cache's
    /// reference semantics; property tests compare [`Llumlet::report`]
    /// against this).
    pub fn report_fresh(&self, now: SimTime, headroom: &HeadroomConfig) -> LoadReport {
        let physical = HeadroomConfig {
            high_priority_target_tokens: None,
            ..*headroom
        };
        LoadReport {
            id: self.engine.id,
            freeness: engine_freeness(&self.engine, self.terminating, now, headroom),
            freeness_physical: engine_freeness(&self.engine, self.terminating, now, &physical),
            memory_load: infaas_memory_load(&self.engine),
            num_running: self.engine.batch_size(),
            num_waiting: self.engine.waiting_len(),
            terminating: self.terminating,
            starting: self.is_starting(now),
        }
    }

    /// Chooses the next request to migrate out, skipping those in `busy`
    /// (already migrating). Per §4.4.3, the default policy "prefers the
    /// requests with lower priorities and shorter sequence lengths".
    pub fn select_migration_victim(&self, busy: impl Fn(RequestId) -> bool) -> Option<RequestId> {
        self.select_migration_victim_with(VictimPolicy::LowPriorityShortest, busy)
    }

    /// Victim selection under an explicit [`VictimPolicy`].
    pub fn select_migration_victim_with(
        &self,
        policy: VictimPolicy,
        busy: impl Fn(RequestId) -> bool,
    ) -> Option<RequestId> {
        let candidates = self
            .engine
            .migratable_requests()
            .into_iter()
            .filter(|(id, _, _)| !busy(*id));
        match policy {
            VictimPolicy::LowPriorityShortest => candidates
                .min_by_key(|&(id, priority, len)| (priority, len, id))
                .map(|(id, _, _)| id),
            VictimPolicy::Shortest => candidates
                .min_by_key(|&(id, _, len)| (len, id))
                .map(|(id, _, _)| id),
            VictimPolicy::Longest => candidates
                .max_by_key(|&(id, _, len)| (len, core::cmp::Reverse(id)))
                .map(|(id, _, _)| id),
            VictimPolicy::Oldest => candidates.min_by_key(|&(id, _, _)| id).map(|(id, _, _)| id),
        }
    }

    /// Whether the instance has fully drained (safe to terminate).
    pub fn is_drained(&self) -> bool {
        !self.engine.has_work()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llumnix_engine::{EngineConfig, PriorityPair, RequestMeta};
    use llumnix_model::InstanceSpec;

    fn llumlet(capacity: u32) -> Llumlet {
        Llumlet::new(
            InstanceEngine::new(
                InstanceId(0),
                InstanceSpec::tiny_for_tests(capacity),
                EngineConfig::default(),
            ),
            SimTime::ZERO,
            None,
        )
    }

    fn run_request(l: &mut Llumlet, id: u64, input: u32, output: u32, priority: PriorityPair) {
        l.engine.add_request(
            RequestMeta {
                id: RequestId(id),
                input_len: input,
                output_len: output,
                priority,
                arrival: SimTime::from_micros(id),
            },
            SimTime::ZERO,
        );
        let p = l.engine.poll_step(SimTime::ZERO).expect("prefill");
        let t = p.finish_at();
        l.engine.complete_step(t);
    }

    #[test]
    fn starting_window() {
        let mut l = llumlet(160);
        assert!(!l.is_starting(SimTime::ZERO));
        l.starting_until = Some(SimTime::from_secs(30));
        assert!(l.is_starting(SimTime::from_secs(29)));
        assert!(!l.is_starting(SimTime::from_secs(30)));
        let r = l.report(SimTime::from_secs(1), &HeadroomConfig::DISABLED);
        assert!(r.starting);
    }

    #[test]
    fn report_reflects_termination() {
        let mut l = llumlet(160);
        l.terminating = true;
        let r = l.report(SimTime::ZERO, &HeadroomConfig::DISABLED);
        assert!(r.terminating);
        assert_eq!(r.freeness, f64::NEG_INFINITY);
    }

    #[test]
    fn victim_prefers_low_priority_then_short() {
        let mut l = llumlet(4096);
        run_request(&mut l, 1, 400, 50, PriorityPair::NORMAL);
        run_request(&mut l, 2, 100, 50, PriorityPair::NORMAL);
        run_request(&mut l, 3, 50, 50, PriorityPair::HIGH);
        // Normal beats high even though r3 is shortest; r2 shortest normal.
        let v = l.select_migration_victim(|_| false).expect("victim");
        assert_eq!(v, RequestId(2));
        // Skip busy requests.
        let v = l
            .select_migration_victim(|id| id == RequestId(2))
            .expect("victim");
        assert_eq!(v, RequestId(1));
        // All busy → none.
        assert!(l.select_migration_victim(|_| true).is_none());
    }

    #[test]
    fn cached_report_tracks_mutations() {
        let mut l = llumlet(4096);
        let h = HeadroomConfig::DISABLED;
        let r1 = l.report(SimTime::ZERO, &h);
        assert_eq!(r1, l.report(SimTime::ZERO, &h), "repeat query hits cache");
        run_request(&mut l, 1, 100, 50, PriorityPair::NORMAL);
        let r2 = l.report(SimTime::ZERO, &h);
        assert_eq!(r2, l.report_fresh(SimTime::ZERO, &h));
        assert_ne!(r1.freeness, r2.freeness, "engine mutation invalidates");
        // The public terminating flag bypasses engine mutations entirely, so
        // the cache must catch it through its key.
        l.terminating = true;
        assert_eq!(l.report(SimTime::ZERO, &h).freeness, f64::NEG_INFINITY);
        // A different headroom config is a different report.
        let r4 = l.report(SimTime::ZERO, &HeadroomConfig::paper_default());
        assert_eq!(
            r4,
            l.report_fresh(SimTime::ZERO, &HeadroomConfig::paper_default())
        );
    }

    #[test]
    fn drained_detection() {
        let mut l = llumlet(160);
        assert!(l.is_drained());
        run_request(&mut l, 1, 32, 4, PriorityPair::NORMAL);
        assert!(!l.is_drained());
    }
}
