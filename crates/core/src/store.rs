//! Dense slab storage for the fleet's llumlets.
//!
//! The serving event loop touches instances on every simulated event —
//! dispatch, step completion, migration stages, sampling — so the container
//! holding them is the hottest data structure in the simulator. A
//! `HashMap<InstanceId, Llumlet>` pays a hash and a probe per access; the
//! slab replaces that with two array indexations: a dense `id → slot` table
//! (instance ids are assigned monotonically and never reused, so the table
//! is a plain `Vec`) and a slot vector whose entries are recycled through a
//! free list, keeping resident memory proportional to the *peak concurrent*
//! fleet, not the total number of instances ever launched.
//!
//! The store also owns the insertion-order walk (`order`) the simulator uses
//! everywhere a deterministic fleet sweep is needed, and the dirty list that
//! drives incremental load-report maintenance: every mutable access marks
//! the instance dirty, so the scheduler's index refresh
//! ([`crate::index::DispatchIndex`]) only revisits instances that could have
//! changed since the last decision.

use llumnix_engine::{InstanceEngine, InstanceId};

use crate::llumlet::Llumlet;

/// Sentinel for "id has no live slot".
const NO_SLOT: u32 = u32::MAX;

/// Slab of llumlets with O(1) id-indexed access and stable iteration order.
///
/// `Clone` supports the sim-level snapshot/fork capability: slots, free list,
/// id map, order walk, and dirty set all copy structurally.
#[derive(Default, Clone)]
pub struct InstanceStore {
    /// Slot payloads; `None` entries are on the free list.
    slots: Vec<Option<Llumlet>>,
    /// Recyclable slot indices.
    free: Vec<u32>,
    /// `InstanceId.0 → slot`, `NO_SLOT` when dead. Grows monotonically with
    /// the id counter (4 bytes per instance ever launched).
    slot_of: Vec<u32>,
    /// Live instances in insertion order — the deterministic sweep order.
    order: Vec<InstanceId>,
    /// Instances touched mutably since the last [`InstanceStore::take_dirty`].
    dirty: Vec<InstanceId>,
    /// Per-slot membership flag for `dirty` (avoids duplicates).
    dirty_flag: Vec<bool>,
}

impl InstanceStore {
    /// An empty store.
    pub fn new() -> Self {
        InstanceStore::default()
    }

    /// Number of live instances.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the store holds no live instances.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Live instances in insertion order.
    pub fn order(&self) -> &[InstanceId] {
        &self.order
    }

    /// Whether `id` is live.
    pub fn contains(&self, id: InstanceId) -> bool {
        self.slot(id).is_some()
    }

    fn slot(&self, id: InstanceId) -> Option<usize> {
        match self.slot_of.get(id.0 as usize) {
            Some(&s) if s != NO_SLOT => Some(s as usize),
            _ => None,
        }
    }

    /// Inserts a new llumlet under `id` and marks it dirty.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already live (ids are never reused).
    pub fn insert(&mut self, id: InstanceId, llumlet: Llumlet) {
        assert!(!self.contains(id), "instance id {id} already live");
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(llumlet);
                s as usize
            }
            None => {
                self.slots.push(Some(llumlet));
                self.dirty_flag.push(false);
                self.slots.len() - 1
            }
        };
        if self.slot_of.len() <= id.0 as usize {
            self.slot_of.resize(id.0 as usize + 1, NO_SLOT);
        }
        self.slot_of[id.0 as usize] = slot as u32;
        self.order.push(id);
        self.mark_dirty(id, slot);
    }

    /// Removes and returns the llumlet under `id`, freeing its slot.
    pub fn remove(&mut self, id: InstanceId) -> Option<Llumlet> {
        let slot = self.slot(id)?;
        let llumlet = self.slots[slot].take();
        self.slot_of[id.0 as usize] = NO_SLOT;
        // Clear the flag now so a future occupant of the recycled slot is not
        // silently treated as already-dirty (the stale dirty-list entry keeps
        // this id's removal visible to the next refresh).
        self.dirty_flag[slot] = false;
        self.free.push(slot as u32);
        self.order.retain(|&i| i != id);
        llumlet
    }

    /// Shared access to a llumlet.
    pub fn get(&self, id: InstanceId) -> Option<&Llumlet> {
        let slot = self.slot(id)?;
        self.slots[slot].as_ref()
    }

    /// Mutable access to a llumlet. Marks the instance dirty: any caller
    /// taking `&mut` may mutate load-relevant state, and over-marking only
    /// costs a (version-cached) report recheck at the next index refresh.
    pub fn get_mut(&mut self, id: InstanceId) -> Option<&mut Llumlet> {
        let slot = self.slot(id)?;
        self.mark_dirty(id, slot);
        self.slots[slot].as_mut()
    }

    /// Disjoint mutable access to the engines of two distinct llumlets,
    /// marking both dirty.
    pub fn two_engines(
        &mut self,
        a: InstanceId,
        b: InstanceId,
    ) -> Option<(&mut InstanceEngine, &mut InstanceEngine)> {
        debug_assert_ne!(a, b, "migration endpoints must differ");
        let sa = self.slot(a)?;
        let sb = self.slot(b)?;
        if sa == sb {
            return None;
        }
        self.mark_dirty(a, sa);
        self.mark_dirty(b, sb);
        let (x, y) = if sa < sb {
            let (lo, hi) = self.slots.split_at_mut(sb);
            (lo[sa].as_mut(), hi[0].as_mut())
        } else {
            let (lo, hi) = self.slots.split_at_mut(sa);
            (hi[0].as_mut(), lo[sb].as_mut())
        };
        match (x, y) {
            (Some(x), Some(y)) => Some((&mut x.engine, &mut y.engine)),
            _ => None,
        }
    }

    fn mark_dirty(&mut self, id: InstanceId, slot: usize) {
        if !self.dirty_flag[slot] {
            self.dirty_flag[slot] = true;
            self.dirty.push(id);
        }
    }

    /// Drains the dirty list into `out` (deduplicated; order is marking
    /// order). Dead instances may appear — callers must re-check liveness.
    pub fn take_dirty(&mut self, out: &mut Vec<InstanceId>) {
        out.clear();
        std::mem::swap(out, &mut self.dirty);
        for &id in out.iter() {
            if let Some(&slot) = self.slot_of.get(id.0 as usize) {
                if slot != NO_SLOT {
                    self.dirty_flag[slot as usize] = false;
                }
            }
        }
    }

    /// Mutable engine references for every live instance except `excluding`,
    /// keyed by id (the coordinator's failure-recovery view). Marks every
    /// returned instance dirty.
    pub fn peers_mut(
        &mut self,
        excluding: InstanceId,
    ) -> std::collections::BTreeMap<InstanceId, &mut InstanceEngine> {
        for i in 0..self.order.len() {
            let id = self.order[i];
            if id != excluding {
                let slot = self.slot(id).expect("order entries are live");
                self.mark_dirty(id, slot);
            }
        }
        self.slots
            .iter_mut()
            .filter_map(|s| s.as_mut())
            .filter(|l| l.engine.id != excluding)
            .map(|l| (l.engine.id, &mut l.engine))
            .collect()
    }

    /// Iterates live llumlets in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (InstanceId, &Llumlet)> {
        self.order.iter().map(move |&id| {
            let slot = self.slot(id).expect("order entries are live");
            (id, self.slots[slot].as_ref().expect("live slot"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llumnix_engine::EngineConfig;
    use llumnix_model::InstanceSpec;
    use llumnix_sim::SimTime;

    fn llumlet(id: u32) -> Llumlet {
        Llumlet::new(
            InstanceEngine::new(
                InstanceId(id),
                InstanceSpec::tiny_for_tests(256),
                EngineConfig::default(),
            ),
            SimTime::ZERO,
            None,
        )
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = InstanceStore::new();
        s.insert(InstanceId(0), llumlet(0));
        s.insert(InstanceId(1), llumlet(1));
        s.insert(InstanceId(2), llumlet(2));
        assert_eq!(s.len(), 3);
        assert_eq!(s.order(), &[InstanceId(0), InstanceId(1), InstanceId(2)]);
        assert_eq!(s.get(InstanceId(1)).unwrap().id(), InstanceId(1));
        let gone = s.remove(InstanceId(1)).unwrap();
        assert_eq!(gone.id(), InstanceId(1));
        assert!(!s.contains(InstanceId(1)));
        assert_eq!(s.order(), &[InstanceId(0), InstanceId(2)]);
        assert!(s.remove(InstanceId(1)).is_none());
    }

    #[test]
    fn slots_are_recycled() {
        let mut s = InstanceStore::new();
        for i in 0..4 {
            s.insert(InstanceId(i), llumlet(i));
        }
        s.remove(InstanceId(1));
        s.remove(InstanceId(3));
        // New instances (fresh ids, never reused) land in recycled slots.
        s.insert(InstanceId(4), llumlet(4));
        s.insert(InstanceId(5), llumlet(5));
        assert_eq!(s.slots.len(), 4, "peak concurrency bounds slot count");
        assert_eq!(
            s.order(),
            &[InstanceId(0), InstanceId(2), InstanceId(4), InstanceId(5)]
        );
        for &id in &[0u32, 2, 4, 5] {
            assert_eq!(s.get(InstanceId(id)).unwrap().id(), InstanceId(id));
        }
    }

    #[test]
    fn mutable_access_marks_dirty() {
        let mut s = InstanceStore::new();
        s.insert(InstanceId(0), llumlet(0));
        s.insert(InstanceId(1), llumlet(1));
        let mut dirty = Vec::new();
        s.take_dirty(&mut dirty);
        assert_eq!(dirty, vec![InstanceId(0), InstanceId(1)], "insert dirties");
        s.take_dirty(&mut dirty);
        assert!(dirty.is_empty(), "drained");
        s.get_mut(InstanceId(1));
        s.get_mut(InstanceId(1));
        s.take_dirty(&mut dirty);
        assert_eq!(dirty, vec![InstanceId(1)], "deduplicated");
        let _ = s.get(InstanceId(0));
        s.take_dirty(&mut dirty);
        assert!(dirty.is_empty(), "shared access does not dirty");
    }

    #[test]
    fn two_engines_disjoint() {
        let mut s = InstanceStore::new();
        s.insert(InstanceId(0), llumlet(0));
        s.insert(InstanceId(1), llumlet(1));
        let (a, b) = s.two_engines(InstanceId(0), InstanceId(1)).unwrap();
        assert_eq!(a.id, InstanceId(0));
        assert_eq!(b.id, InstanceId(1));
        let (b2, a2) = s.two_engines(InstanceId(1), InstanceId(0)).unwrap();
        assert_eq!(b2.id, InstanceId(1));
        assert_eq!(a2.id, InstanceId(0));
        s.remove(InstanceId(1));
        assert!(s.two_engines(InstanceId(0), InstanceId(1)).is_none());
    }
}
