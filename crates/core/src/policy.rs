//! Scheduling policies: dispatch, migration pairing, and auto-scaling.
//!
//! These are the pure decision functions of the global scheduler (§4.3): it
//! never tracks individual requests, only instance-level loads, and leaves
//! request selection and migration execution to the llumlets.

use llumnix_engine::InstanceId;
use llumnix_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Which scheduler drives the cluster — Llumnix or one of the paper's
/// baselines (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Round-robin dispatching, no migration (production-default baseline).
    RoundRobin,
    /// INFaaS++: memory-load-aware dispatching (counting queued demand) and
    /// load-aware auto-scaling; no migration.
    InfaasPlusPlus,
    /// Llumnix without priorities: migration, de-fragmentation, auto-scaling,
    /// but every request treated as normal priority.
    LlumnixBase,
    /// Full Llumnix: everything plus priority support.
    Llumnix,
    /// A centralized scheduler that synchronously tracks every request
    /// (the §6.6 scalability baseline); load-aware dispatch, no migration,
    /// per-step scheduling stalls.
    Centralized,
}

impl SchedulerKind {
    /// Whether this scheduler reschedules requests via live migration.
    pub fn uses_migration(&self) -> bool {
        matches!(self, SchedulerKind::LlumnixBase | SchedulerKind::Llumnix)
    }

    /// Whether request priorities are honored (scheduling + execution).
    pub fn uses_priorities(&self) -> bool {
        matches!(self, SchedulerKind::Llumnix)
    }

    /// Whether per-step centralized scheduling stalls apply.
    pub fn has_central_stalls(&self) -> bool {
        matches!(self, SchedulerKind::Centralized)
    }

    /// Display label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerKind::RoundRobin => "round-robin",
            SchedulerKind::InfaasPlusPlus => "infaas++",
            SchedulerKind::LlumnixBase => "llumnix-base",
            SchedulerKind::Llumnix => "llumnix",
            SchedulerKind::Centralized => "centralized",
        }
    }
}

/// One instance's load report to the global scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadReport {
    /// Reporting instance.
    pub id: InstanceId,
    /// Freeness in decode steps (Llumnix) or the INFaaS equivalent.
    pub freeness: f64,
    /// Freeness without execution-priority headroom (physical + queue
    /// demand only). High-priority dispatch uses this: the headroom exists
    /// to repel *normal* load, not the protected class itself.
    pub freeness_physical: f64,
    /// Memory load fraction (INFaaS++ dispatch signal).
    pub memory_load: f64,
    /// Number of running requests (termination victim selection).
    pub num_running: usize,
    /// Number of queued requests.
    pub num_waiting: usize,
    /// Whether the instance is draining for termination.
    pub terminating: bool,
    /// Whether the instance is still starting up (not yet serving).
    pub starting: bool,
}

/// Dispatch state (round-robin counter lives here).
#[derive(Debug, Default, Clone)]
pub struct Dispatcher {
    rr_counter: u64,
}

impl Dispatcher {
    /// Creates a dispatcher.
    pub fn new() -> Self {
        Dispatcher::default()
    }

    /// Picks the instance for a new request. Terminating and starting
    /// instances are excluded. Returns `None` when no instance is available.
    pub fn dispatch(&mut self, kind: SchedulerKind, reports: &[LoadReport]) -> Option<InstanceId> {
        self.dispatch_for(kind, reports, false)
    }

    /// Like [`Dispatcher::dispatch`], for a request of known class: high
    /// execution priority dispatches by headroom-free freeness.
    pub fn dispatch_for(
        &mut self,
        kind: SchedulerKind,
        reports: &[LoadReport],
        high_priority: bool,
    ) -> Option<InstanceId> {
        let eligible: Vec<&LoadReport> = reports
            .iter()
            .filter(|r| !r.terminating && !r.starting)
            .collect();
        if eligible.is_empty() {
            return None;
        }
        match kind {
            SchedulerKind::RoundRobin => {
                let idx = (self.rr_counter as usize) % eligible.len();
                self.rr_counter += 1;
                Some(eligible[idx].id)
            }
            SchedulerKind::InfaasPlusPlus => eligible
                .iter()
                .min_by(|a, b| {
                    a.memory_load
                        // lint: allow(float-ord) — loads are finite and ties fall through to the id tiebreaker below
                        .partial_cmp(&b.memory_load)
                        .expect("loads finite")
                        .then(a.id.cmp(&b.id))
                })
                .map(|r| r.id),
            SchedulerKind::LlumnixBase | SchedulerKind::Llumnix | SchedulerKind::Centralized => {
                let key = |r: &LoadReport| {
                    if high_priority {
                        r.freeness_physical
                    } else {
                        r.freeness
                    }
                };
                eligible
                    .iter()
                    .max_by(|a, b| {
                        key(a)
                            // lint: allow(float-ord) — freeness is finite and ties fall through to the id tiebreaker below
                            .partial_cmp(&key(b))
                            .expect("freeness is never NaN")
                            .then(b.id.cmp(&a.id))
                    })
                    .map(|r| r.id)
            }
        }
    }

    /// Like [`Dispatcher::dispatch_for`], but selecting from an incremental
    /// index — the monolithic [`DispatchIndex`](crate::index::DispatchIndex)
    /// or the sharded [`MergedIndex`](crate::index::MergedIndex) view —
    /// instead of scanning a report slice: same decisions, same tie-breaks,
    /// O(log N). The round-robin counter advances exactly when the slice
    /// path would have advanced it (some instance is eligible).
    pub fn dispatch_indexed<I: crate::index::IndexReads>(
        &mut self,
        kind: SchedulerKind,
        index: &I,
        high_priority: bool,
    ) -> Option<InstanceId> {
        let len = index.serving_len();
        if len == 0 {
            return None;
        }
        match kind {
            SchedulerKind::RoundRobin => {
                let idx = (self.rr_counter as usize) % len;
                self.rr_counter += 1;
                index.serving_at(idx)
            }
            SchedulerKind::InfaasPlusPlus => index.least_memory_load(),
            SchedulerKind::LlumnixBase | SchedulerKind::Llumnix | SchedulerKind::Centralized => {
                index.freest(high_priority)
            }
        }
    }
}

/// Which running request a migration-source llumlet moves out first.
///
/// The paper's rule is [`VictimPolicy::LowPriorityShortest`] (§4.4.3: "the
/// llumlet prefers the requests with lower priorities and shorter sequence
/// lengths"); the alternatives exist for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum VictimPolicy {
    /// Lowest execution priority first, then shortest sequence (paper).
    #[default]
    LowPriorityShortest,
    /// Shortest sequence regardless of priority.
    Shortest,
    /// Longest sequence (moves the most memory per migration).
    Longest,
    /// Lowest request id (oldest resident request).
    Oldest,
}

/// Migration-pairing thresholds (freeness in decode steps).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationThresholds {
    /// Instances below this freeness become migration sources.
    pub source_below: f64,
    /// Instances above this freeness become migration destinations.
    pub destination_above: f64,
}

impl Default for MigrationThresholds {
    fn default() -> Self {
        // Tuned on the M-M/L-L/S-L probes: a source threshold of 30 steps
        // starts rescues early enough to beat the ≈0.3 s migration latency,
        // and a destination threshold of 60 keeps destinations available at
        // high load (a wide dead band starves pairing exactly when load
        // balancing matters most).
        MigrationThresholds {
            source_below: 30.0,
            destination_above: 60.0,
        }
    }
}

/// Pairs migration sources with destinations (§4.4.3): candidates beyond the
/// thresholds, lowest freeness matched with highest, repeatedly. Terminating
/// instances are always sources (their fake request gives them `-∞`
/// freeness) — even when still inside their startup delay, as happens under
/// fast scale-up-then-down churn; starting instances are never destinations
/// and only become ordinary sources once serving.
pub fn pair_migrations(
    reports: &[LoadReport],
    thresholds: MigrationThresholds,
) -> Vec<(InstanceId, InstanceId)> {
    let mut sources: Vec<&LoadReport> = reports
        .iter()
        .filter(|r| r.terminating || (!r.starting && r.freeness < thresholds.source_below))
        .collect();
    let mut dests: Vec<&LoadReport> = reports
        .iter()
        .filter(|r| !r.starting && !r.terminating && r.freeness > thresholds.destination_above)
        .collect();
    sources.sort_by(|a, b| {
        a.freeness
            // lint: allow(float-ord) — freeness is finite and ties fall through to the id tiebreaker below
            .partial_cmp(&b.freeness)
            .expect("freeness totally ordered")
            .then(a.id.cmp(&b.id))
    });
    dests.sort_by(|a, b| {
        b.freeness
            // lint: allow(float-ord) — freeness is finite and ties fall through to the id tiebreaker below
            .partial_cmp(&a.freeness)
            .expect("freeness totally ordered")
            .then(a.id.cmp(&b.id))
    });
    sources
        .into_iter()
        .zip(dests)
        .map(|(s, d)| (s.id, d.id))
        .collect()
}

/// Auto-scaling configuration (§4.4.3, §6.5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoScaleConfig {
    /// Minimum instances kept alive.
    pub min_instances: u32,
    /// Maximum instances (the paper caps at 16).
    pub max_instances: u32,
    /// Scale *up* when average freeness stays below this.
    pub freeness_low: f64,
    /// Scale *down* when average freeness stays above this.
    pub freeness_high: f64,
    /// How long the average must stay out of range before acting.
    pub sustain: SimDuration,
    /// Startup delay before a new instance serves (model load etc.).
    pub startup_delay: SimDuration,
}

impl AutoScaleConfig {
    /// The paper's default `[10, 60]` threshold range.
    pub fn paper_default(max_instances: u32) -> Self {
        AutoScaleConfig {
            min_instances: 1,
            max_instances,
            freeness_low: 10.0,
            freeness_high: 60.0,
            sustain: SimDuration::from_secs(10),
            startup_delay: SimDuration::from_secs(30),
        }
    }

    /// The §6.5 threshold sweep: range `[t, t+50]`.
    pub fn with_threshold(mut self, t: f64) -> Self {
        self.freeness_low = t;
        self.freeness_high = t + 50.0;
        self
    }
}

/// A scaling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleAction {
    /// Launch a new instance.
    Up,
    /// Drain and terminate one instance.
    Down,
}

/// Sustained-threshold auto-scaler.
///
/// Observations are averaged over a rolling window of length `sustain`
/// before being compared to the thresholds, so a single transient sample in
/// range cannot mask sustained pressure (queue-driven freeness flickers
/// between negative and positive as head-of-line requests get admitted).
/// After each action the window clears, enforcing a cooldown of `sustain`.
#[derive(Debug, Clone)]
pub struct AutoScaler {
    config: AutoScaleConfig,
    window: Vec<(SimTime, f64)>,
    window_start: Option<SimTime>,
    last_up: Option<SimTime>,
}

impl AutoScaler {
    /// Creates a scaler.
    pub fn new(config: AutoScaleConfig) -> Self {
        AutoScaler {
            config,
            window: Vec::new(),
            window_start: None,
            last_up: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &AutoScaleConfig {
        &self.config
    }

    /// Feeds one observation of the cluster's average freeness over
    /// non-terminating instances; returns an action when the windowed mean
    /// has stayed beyond a threshold for the sustain period.
    ///
    /// `alive` is every paid-for instance (serving + starting + draining) and
    /// bounds scale-up; `active` excludes draining instances and bounds
    /// scale-down, so capacity already being drained is not double-counted.
    pub fn observe_counts(
        &mut self,
        avg_freeness: f64,
        alive: u32,
        active: u32,
        now: SimTime,
    ) -> Option<ScaleAction> {
        let cfg = self.config;
        self.window_start.get_or_insert(now);
        self.window.push((now, avg_freeness));
        self.window.retain(|&(t, _)| now.since(t) <= cfg.sustain);
        // The window must span the full sustain period since the last reset.
        let spanned = self
            .window_start
            .is_some_and(|s| now.since(s) >= cfg.sustain);
        if !spanned || self.window.is_empty() {
            return None;
        }
        let mean = self.window.iter().map(|&(_, v)| v).sum::<f64>() / self.window.len() as f64;
        // Scale-down is suppressed while recently launched capacity is still
        // starting up and filling — an empty instance reports a huge
        // freeness that would otherwise be misread as global overprovision.
        let down_cooldown = cfg.sustain + cfg.startup_delay + cfg.sustain;
        let down_allowed = self.last_up.is_none_or(|t| now.since(t) >= down_cooldown);
        let action = if mean < cfg.freeness_low && alive < cfg.max_instances {
            Some(ScaleAction::Up)
        } else if mean > cfg.freeness_high && active > cfg.min_instances && down_allowed {
            Some(ScaleAction::Down)
        } else {
            None
        };
        if action.is_some() {
            self.window.clear();
            self.window_start = Some(now);
            if action == Some(ScaleAction::Up) {
                self.last_up = Some(now);
            }
        }
        action
    }

    /// [`AutoScaler::observe_counts`] with a single instance count used for
    /// both bounds (no draining instances to distinguish).
    pub fn observe(&mut self, avg_freeness: f64, active: u32, now: SimTime) -> Option<ScaleAction> {
        self.observe_counts(avg_freeness, active, active, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(id: u32, freeness: f64, load: f64) -> LoadReport {
        LoadReport {
            id: InstanceId(id),
            freeness,
            freeness_physical: freeness,
            memory_load: load,
            num_running: 0,
            num_waiting: 0,
            terminating: false,
            starting: false,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut d = Dispatcher::new();
        let reports = vec![
            report(0, 0.0, 0.0),
            report(1, 0.0, 0.0),
            report(2, 0.0, 0.0),
        ];
        let picks: Vec<u32> = (0..6)
            .map(|_| {
                d.dispatch(SchedulerKind::RoundRobin, &reports)
                    .expect("some")
                    .0
            })
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn llumnix_dispatches_to_freest() {
        let mut d = Dispatcher::new();
        let reports = vec![
            report(0, 10.0, 0.9),
            report(1, 500.0, 0.2),
            report(2, 90.0, 0.5),
        ];
        assert_eq!(
            d.dispatch(SchedulerKind::Llumnix, &reports),
            Some(InstanceId(1))
        );
        // Negative freeness (queuing/high-priority instances) loses.
        let reports = vec![report(0, -5.0, 0.9), report(1, 2.0, 0.2)];
        assert_eq!(
            d.dispatch(SchedulerKind::Llumnix, &reports),
            Some(InstanceId(1))
        );
    }

    #[test]
    fn infaas_dispatches_to_lowest_load() {
        let mut d = Dispatcher::new();
        let reports = vec![
            report(0, 0.0, 0.9),
            report(1, 0.0, 0.2),
            report(2, 0.0, 0.5),
        ];
        assert_eq!(
            d.dispatch(SchedulerKind::InfaasPlusPlus, &reports),
            Some(InstanceId(1))
        );
    }

    #[test]
    fn dispatch_skips_terminating_and_starting() {
        let mut d = Dispatcher::new();
        let mut r0 = report(0, 1000.0, 0.0);
        r0.terminating = true;
        let mut r1 = report(1, 1000.0, 0.0);
        r1.starting = true;
        let r2 = report(2, 1.0, 0.99);
        let reports = vec![r0, r1, r2];
        assert_eq!(
            d.dispatch(SchedulerKind::Llumnix, &reports),
            Some(InstanceId(2))
        );
        assert_eq!(
            d.dispatch(SchedulerKind::InfaasPlusPlus, &reports),
            Some(InstanceId(2))
        );
        let all_out = vec![r0, r1];
        assert_eq!(d.dispatch(SchedulerKind::Llumnix, &all_out), None);
    }

    #[test]
    fn pairing_matches_extremes() {
        let reports = vec![
            report(0, 25.0, 0.0),  // source
            report(1, 100.0, 0.0), // dest
            report(2, -3.0, 0.0),  // source (worse)
            report(3, 70.0, 0.0),  // dest (weaker)
            report(4, 30.0, 0.0),  // neither
        ];
        let pairs = pair_migrations(&reports, MigrationThresholds::default());
        assert_eq!(
            pairs,
            vec![
                (InstanceId(2), InstanceId(1)),
                (InstanceId(0), InstanceId(3)),
            ]
        );
    }

    #[test]
    fn pairing_includes_terminating_sources() {
        let mut term = report(0, f64::NEG_INFINITY, 0.0);
        term.terminating = true;
        let reports = vec![term, report(1, 100.0, 0.0)];
        let pairs = pair_migrations(&reports, MigrationThresholds::default());
        assert_eq!(pairs, vec![(InstanceId(0), InstanceId(1))]);
        // A terminating instance is never a destination.
        let mut term_free = report(0, f64::NEG_INFINITY, 0.0);
        term_free.terminating = true;
        let reports = vec![term_free, report(1, 5.0, 0.0)];
        let pairs = pair_migrations(&reports, MigrationThresholds::default());
        assert!(pairs.is_empty());
    }

    #[test]
    fn pairing_empty_when_balanced() {
        let reports = vec![report(0, 30.0, 0.0), report(1, 40.0, 0.0)];
        assert!(pair_migrations(&reports, MigrationThresholds::default()).is_empty());
    }

    #[test]
    fn autoscaler_requires_sustained_breach() {
        let cfg = AutoScaleConfig::paper_default(16);
        let mut s = AutoScaler::new(cfg);
        let t0 = SimTime::from_secs(100);
        assert_eq!(s.observe(5.0, 4, t0), None);
        // Recovers before the sustain period: no action.
        assert_eq!(s.observe(30.0, 4, t0 + SimDuration::from_secs(5)), None);
        assert_eq!(s.observe(5.0, 4, t0 + SimDuration::from_secs(6)), None);
        // Now sustained for 10 s.
        assert_eq!(
            s.observe(5.0, 4, t0 + SimDuration::from_secs(16)),
            Some(ScaleAction::Up)
        );
        // Timer reset after the action.
        assert_eq!(s.observe(5.0, 5, t0 + SimDuration::from_secs(17)), None);
    }

    #[test]
    fn autoscaler_scale_down_and_limits() {
        let cfg = AutoScaleConfig::paper_default(16);
        let mut s = AutoScaler::new(cfg);
        let t0 = SimTime::from_secs(0);
        assert_eq!(s.observe(100.0, 2, t0), None);
        assert_eq!(
            s.observe(100.0, 2, t0 + SimDuration::from_secs(10)),
            Some(ScaleAction::Down)
        );
        // At min instances, no scale-down fires.
        let mut s = AutoScaler::new(cfg);
        assert_eq!(s.observe(100.0, 1, t0), None);
        assert_eq!(s.observe(100.0, 1, t0 + SimDuration::from_secs(20)), None);
        // At max instances, no scale-up fires.
        let mut s = AutoScaler::new(cfg);
        assert_eq!(s.observe(1.0, 16, t0), None);
        assert_eq!(s.observe(1.0, 16, t0 + SimDuration::from_secs(20)), None);
    }

    #[test]
    fn threshold_sweep_builder() {
        let cfg = AutoScaleConfig::paper_default(16).with_threshold(25.0);
        assert_eq!(cfg.freeness_low, 25.0);
        assert_eq!(cfg.freeness_high, 75.0);
    }

    #[test]
    fn kind_properties() {
        assert!(SchedulerKind::Llumnix.uses_migration());
        assert!(SchedulerKind::LlumnixBase.uses_migration());
        assert!(!SchedulerKind::InfaasPlusPlus.uses_migration());
        assert!(SchedulerKind::Llumnix.uses_priorities());
        assert!(!SchedulerKind::LlumnixBase.uses_priorities());
        assert!(SchedulerKind::Centralized.has_central_stalls());
        assert_eq!(SchedulerKind::RoundRobin.label(), "round-robin");
    }
}
