//! Fault-tolerance drill (paper §5).
//!
//! Injects an instance failure and a global-scheduler outage into a serving
//! run. The expectations: requests resident on the failed instance abort and
//! in-flight migrations touching it abort cleanly via the handshake; during
//! the global-scheduler outage the frontends fall back to scheduler-bypass
//! round-robin dispatch and migration pauses, so availability is preserved.
//!
//! ```sh
//! cargo run --release --example failure_drill
//! ```

use llumnix::prelude::*;
use llumnix::sim::{SimDuration, SimTime};

fn main() {
    let spec = trace_presets::by_name("S-S", 3_000, Arrivals::poisson(12.0)).expect("preset");
    let trace = spec.generate(&SimRng::new(3));

    println!("baseline (no failures):");
    let out = run_serving(ServingConfig::new(SchedulerKind::Llumnix, 8), trace.clone());
    let report = LatencyReport::from_records(&out.records);
    println!(
        "  {} completed, {} aborted, prefill p99 {}",
        out.records.len(),
        out.aborted,
        fmt_secs(report.prefill.p99)
    );

    println!("\ninstance 3 fails at t=60s and is restarted 10s later:");
    let mut config = ServingConfig::new(SchedulerKind::Llumnix, 8);
    config.failures = vec![FailureSpec::Instance {
        instance: InstanceId(3),
        at: SimTime::from_secs(60),
        restart_after: Some(SimDuration::from_secs(10)),
    }];
    let out = run_serving(config, trace.clone());
    let report = LatencyReport::from_records(&out.records);
    println!(
        "  {} completed, {} aborted (died with the instance), prefill p99 {}",
        out.records.len(),
        out.aborted,
        fmt_secs(report.prefill.p99)
    );
    println!(
        "  migrations: {} committed, {} aborted by the handshake",
        out.migration_stats.committed, out.migration_stats.aborted
    );

    println!("\nglobal scheduler down from t=30s to t=90s (scheduler-bypass mode):");
    let mut config = ServingConfig::new(SchedulerKind::Llumnix, 8);
    config.failures = vec![FailureSpec::GlobalScheduler {
        at: SimTime::from_secs(30),
        duration: SimDuration::from_secs(60),
    }];
    let out = run_serving(config, trace);
    let report = LatencyReport::from_records(&out.records);
    println!(
        "  {} completed, {} aborted — availability preserved; prefill p99 {} \
         (degraded while dispatch was round-robin and migration paused)",
        out.records.len(),
        out.aborted,
        fmt_secs(report.prefill.p99)
    );
}
