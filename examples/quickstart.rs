//! Quickstart: serve a generated workload on a Llumnix-scheduled cluster and
//! print the latency report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use llumnix::prelude::*;

fn main() {
    // 1. Describe the workload: 2,000 requests with Medium-Medium lengths
    //    (power-law, mean 256 tokens in and out — paper Table 1) arriving as
    //    a Poisson process at 9 requests/second.
    let spec = trace_presets::by_name("M-M", 2_000, Arrivals::poisson(9.0))
        .expect("M-M is a built-in preset");
    let trace = spec.generate(&SimRng::new(42));
    println!(
        "trace: {} requests over {:.0}s, mean input {:.0} tokens, mean output {:.0} tokens",
        trace.len(),
        trace.span().as_secs_f64(),
        trace.mean_input_len(),
        trace.mean_output_len()
    );

    // 2. Serve it on 16 LLaMA-7B instances under each scheduler.
    for kind in [
        SchedulerKind::RoundRobin,
        SchedulerKind::InfaasPlusPlus,
        SchedulerKind::Llumnix,
    ] {
        let config = ServingConfig::new(kind, 16);
        let out = run_serving(config, trace.clone());
        let report = LatencyReport::from_records(&out.records);

        // 3. Read the results.
        println!("\n=== {} ===", kind.label());
        println!(
            "  e2e      mean {:>8}   p99 {:>8}",
            fmt_secs(report.e2e.mean),
            fmt_secs(report.e2e.p99)
        );
        println!(
            "  prefill  mean {:>8}   p99 {:>8}",
            fmt_secs(report.prefill.mean),
            fmt_secs(report.prefill.p99)
        );
        println!(
            "  decode   mean {:>8}   p99 {:>8}  (per token)",
            fmt_secs(report.decode.mean),
            fmt_secs(report.decode.p99)
        );
        println!(
            "  preemptions {}   preemption loss mean {}",
            report.total_preemptions,
            fmt_secs(report.preemption_loss.mean)
        );
        println!(
            "  migrations committed {}   mean downtime {}",
            out.migration_stats.committed,
            fmt_secs(
                out.migration_stats.total_downtime.as_secs_f64()
                    / out.migration_stats.committed.max(1) as f64
            )
        );
    }
}
