//! Fragmentation case study (paper §3 Figure 5 and §6.3 Figure 12).
//!
//! Serves the same Medium-Medium workload twice — once with INFaaS++-style
//! load-aware dispatch only, once with Llumnix's migration-based
//! de-fragmentation — and shows what happens to queuing requests whose
//! demand the cluster could satisfy *in total* but no single instance can:
//! with migration, running requests are moved to carve out contiguous space
//! and the queue drains.
//!
//! ```sh
//! cargo run --release --example fragmentation_case_study
//! ```

use llumnix::metrics::sparkline_annotated;
use llumnix::prelude::*;

fn main() {
    let rate = 11.0;
    let spec = trace_presets::by_name("M-M", 6_000, Arrivals::poisson(rate)).expect("preset");
    let trace = spec.generate(&SimRng::new(20240710));
    println!(
        "workload: {} requests, M-M lengths, {rate} req/s over 16 LLaMA-7B instances\n",
        trace.len()
    );

    let mut results = Vec::new();
    for kind in [SchedulerKind::InfaasPlusPlus, SchedulerKind::Llumnix] {
        let out = run_serving(ServingConfig::new(kind, 16), trace.clone());
        let report = LatencyReport::from_records(&out.records);
        println!("=== {} ===", kind.label());
        println!(
            "  prefill mean {:>8}  p99 {:>8}   (queuing shows up here)",
            fmt_secs(report.prefill.mean),
            fmt_secs(report.prefill.p99)
        );
        println!(
            "  queued requests  {}",
            sparkline_annotated(&out.queued, 56)
        );
        println!(
            "  fragmented mem   {}",
            sparkline_annotated(&out.fragmentation, 56)
        );
        println!(
            "  mean fragmented-memory proportion: {:.2}%   migrations: {}\n",
            out.fragmentation.mean() * 100.0,
            out.migration_stats.committed
        );
        results.push((kind, out, report));
    }

    let (_, infaas, ri) = &results[0];
    let (_, llumnix, rl) = &results[1];
    println!(
        "de-fragmentation effect: fragmented memory {:.2}% -> {:.2}% ({:.0}% reduction, paper: 92%),",
        infaas.fragmentation.mean() * 100.0,
        llumnix.fragmentation.mean() * 100.0,
        (1.0 - llumnix.fragmentation.mean() / infaas.fragmentation.mean().max(1e-12)) * 100.0
    );
    println!(
        "P99 prefill {} -> {} ({:.1}x)",
        fmt_secs(ri.prefill.p99),
        fmt_secs(rl.prefill.p99),
        ri.prefill.p99 / rl.prefill.p99.max(1e-12)
    );
}
