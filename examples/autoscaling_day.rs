//! Auto-scaling through a load swing.
//!
//! Emulates a service day in fast-forward: a quiet period, a steep ramp to
//! peak traffic, and a decay back to quiet. Llumnix's auto-scaler grows the
//! cluster by watching the average freeness, saturates new instances by
//! migrating requests onto them, and drains instances (fake ∞-usage request
//! + migration) on the way down — paper Figure 1(d) and §6.5.
//!
//! ```sh
//! cargo run --release --example autoscaling_day
//! ```

use llumnix::prelude::*;
use llumnix::workload::{table1, Phase, PhasedSpec};

/// Builds a three-phase trace: quiet (1 req/s), peak (6 req/s), quiet.
fn day_trace(seed: u64) -> Trace {
    PhasedSpec::new(
        "day",
        vec![
            Phase {
                rate: 1.0,
                duration_secs: 600.0,
            },
            Phase {
                rate: 6.0,
                duration_secs: 1200.0,
            },
            Phase {
                rate: 1.0,
                duration_secs: 600.0,
            },
        ],
        LengthDist::Anchored(table1::medium()),
        LengthDist::Anchored(table1::medium()),
    )
    .generate(&SimRng::new(seed))
}

fn main() {
    let trace = day_trace(11);
    println!(
        "day trace: {} requests over {:.0} minutes (quiet -> peak -> quiet)",
        trace.len(),
        trace.span().as_secs_f64() / 60.0
    );
    for kind in [SchedulerKind::InfaasPlusPlus, SchedulerKind::Llumnix] {
        let config = ServingConfig::new(kind, 2).with_autoscale(AutoScaleConfig::paper_default(16));
        let out = run_serving(config, trace.clone());
        let report = LatencyReport::from_records(&out.records);
        println!("\n=== {} ===", kind.label());
        println!(
            "  avg instances {:.2} (cost)   peak {:.0}",
            out.avg_instances,
            out.instances.max()
        );
        println!(
            "  prefill mean {:>8}  p99 {:>8}",
            fmt_secs(report.prefill.mean),
            fmt_secs(report.prefill.p99)
        );
        println!(
            "  e2e mean {:>8}  p99 {:>8}",
            fmt_secs(report.e2e.mean),
            fmt_secs(report.e2e.p99)
        );
        // A rough picture of the fleet over time.
        let pts = out.instances.points();
        let step = (pts.len() / 12).max(1);
        let sketch: Vec<String> = pts
            .iter()
            .step_by(step)
            .map(|(t, v)| format!("{:.0}m:{v:.0}", t.as_secs_f64() / 60.0))
            .collect();
        println!("  fleet size over time: {}", sketch.join(" "));
    }
}
