//! An interactive chatbot sharing a cluster with offline batch jobs.
//!
//! The paper's motivating priority scenario (§1, §6.4): latency-sensitive
//! chatbot turns (short prompts, short answers, high priority) run on the
//! same LLaMA deployment as latency-tolerant offline work (evaluation,
//! scoring — here: long documents, long outputs, normal priority). With
//! priority support, Llumnix gives the chatbot requests earlier scheduling
//! and a protected execution environment; the batch jobs keep the cluster
//! busy and barely notice.
//!
//! ```sh
//! cargo run --release --example chatbot_vs_batch
//! ```

use llumnix::prelude::*;
use llumnix::sim::SimTime;
use llumnix::workload::table1;

/// Builds a mixed trace by merging a bursty chatbot stream (tagged high
/// priority) with a steady offline stream, then sorting by arrival.
fn mixed_trace(seed: u64) -> Trace {
    let rng = SimRng::new(seed);
    // Chatbot: Short lengths, bursty arrivals (Gamma, CV 4), 1 req/s.
    let chat = TraceSpec::new(
        "chatbot",
        1_000,
        Arrivals::gamma(1.0, 4.0),
        LengthDist::Anchored(table1::short()),
        LengthDist::Anchored(table1::short()),
    )
    .with_high_priority_fraction(1.0)
    .generate(&rng.split("chat"));
    // Offline: Long lengths, steady arrivals, 3 req/s.
    let batch = TraceSpec::new(
        "offline",
        3_000,
        Arrivals::poisson(3.0),
        LengthDist::Anchored(table1::long()),
        LengthDist::Anchored(table1::long()),
    )
    .generate(&rng.split("batch"));

    let mut requests = Vec::with_capacity(chat.len() + batch.len());
    requests.extend(chat.requests);
    // Offset the offline ids so they stay unique, keep arrivals as-is.
    requests.extend(batch.requests.into_iter().map(|mut r| {
        r.id += 1_000_000;
        r
    }));
    requests.sort_by_key(|r| (r.arrival, r.id));
    for (i, r) in requests.iter_mut().enumerate() {
        r.id = i as u64; // re-densify ids; the high flag still marks chatbot
    }
    Trace {
        name: "chatbot+offline".into(),
        requests,
    }
}

fn class_report(
    records: &[llumnix::metrics::RequestRecord],
    class: RecordPriority,
) -> LatencyReport {
    LatencyReport::for_priority(records, class)
}

fn main() {
    let trace = mixed_trace(7);
    println!(
        "mixed workload: {} requests ({} chatbot, {} offline) over {:.0}s",
        trace.len(),
        trace.requests.iter().filter(|r| r.high_priority).count(),
        trace.requests.iter().filter(|r| !r.high_priority).count(),
        trace.span().as_secs_f64()
    );

    for kind in [SchedulerKind::LlumnixBase, SchedulerKind::Llumnix] {
        let out = run_serving(ServingConfig::new(kind, 16), trace.clone());
        let chat = class_report(&out.records, RecordPriority::High);
        let offline = class_report(&out.records, RecordPriority::Normal);
        println!("\n=== {} ===", kind.label());
        println!(
            "  chatbot : e2e mean {:>8}  prefill p99 {:>8}  decode/token mean {:>8}",
            fmt_secs(chat.e2e.mean),
            fmt_secs(chat.prefill.p99),
            fmt_secs(chat.decode.mean)
        );
        println!(
            "  offline : e2e mean {:>8}  prefill p99 {:>8}  decode/token mean {:>8}",
            fmt_secs(offline.e2e.mean),
            fmt_secs(offline.prefill.p99),
            fmt_secs(offline.decode.mean)
        );
        let _last: SimTime = out.makespan;
    }
    println!(
        "\nWith priorities on (llumnix), chatbot end-to-end latency and decode speed improve --\n\
         normal requests are migrated off its instances -- while the offline jobs' metrics stay\n\
         close to the priority-agnostic run. The effect grows with load burstiness (see fig13)."
    );
}
