//! Driving one live migration by hand through the public API.
//!
//! Walks a request through the paper's Figure 7 handshake step by step —
//! pre-allocate, background copy stages overlapped with decoding, drain,
//! final copy, commit — and prints what happens at each point, including the
//! downtime the request observes and what the naive alternatives would have
//! cost.
//!
//! ```sh
//! cargo run --release --example live_migration
//! ```

use llumnix::engine::{EngineConfig, EngineEvent, InstanceEngine, InstanceId, RequestMeta};
use llumnix::migration::{
    CommitResult, MigrationConfig, MigrationCoordinator, StageOutcome, StartOutcome,
};
use llumnix::prelude::*;
use llumnix::sim::SimTime;

fn main() {
    let spec = InstanceSpec::llama_7b_a10();
    let mut src = InstanceEngine::new(InstanceId(0), spec.clone(), EngineConfig::default());
    let mut dst = InstanceEngine::new(InstanceId(1), spec.clone(), EngineConfig::default());

    // A long-context request: 4k prompt, long generation.
    let req = RequestId(1);
    src.add_request(
        RequestMeta {
            id: req,
            input_len: 4_096,
            output_len: 2_000,
            priority: PriorityPair::NORMAL,
            arrival: SimTime::ZERO,
        },
        SimTime::ZERO,
    );
    let plan = src.poll_step(SimTime::ZERO).expect("prefill step");
    let mut now = plan.finish_at();
    src.complete_step(now);
    println!(
        "t={now}: prefill done, request resident with {} KV blocks on {}",
        src.physical_blocks_of(req),
        src.id
    );

    // Decode a while, then start migrating.
    for _ in 0..20 {
        let plan = src.poll_step(now).expect("decode");
        now = plan.finish_at();
        src.complete_step(now);
    }
    let tokens = src.state(req).expect("resident").cached_tokens;
    println!("t={now}: request has {tokens} tokens of KV cache; starting live migration");

    let mut coord = MigrationCoordinator::new(MigrationConfig::default());
    let StartOutcome::Started {
        id,
        mut stage_done_at,
    } = coord.start(req, &mut src, &mut dst, now)
    else {
        panic!("handshake refused");
    };
    println!(
        "t={now}: pre-allocate accepted on {}; stage 0 copies {tokens} tokens in the background",
        dst.id
    );

    let mut decode_steps_during = 0u32;
    let mut drained_commit: Option<SimTime> = None;
    let commit_at = loop {
        // The source keeps decoding while the copy runs.
        while now < stage_done_at && drained_commit.is_none() {
            let plan = src.poll_step(now).expect("decode continues");
            now = plan.finish_at();
            let events = src.complete_step(now);
            decode_steps_during += 1;
            if events.iter().any(|e| matches!(e, EngineEvent::Drained(_))) {
                let (_, at) = coord
                    .on_drained(req, &mut src, now)
                    .expect("drain was awaited");
                println!("t={now}: request drained from the batch — downtime starts");
                drained_commit = Some(at);
            }
        }
        if let Some(at) = drained_commit {
            break at;
        }
        match coord
            .on_stage_done(id, &mut src, &mut dst, stage_done_at)
            .expect("migration active")
        {
            StageOutcome::NextStage { copy_done_at } => {
                let copied = src.state(req).expect("alive").cached_tokens;
                println!(
                    "t={stage_done_at}: stage done; {copied} tokens now cached, next stage copies the delta"
                );
                stage_done_at = copy_done_at;
            }
            StageOutcome::DrainRequested => {
                println!("t={stage_done_at}: delta fits one iteration — drain requested at the step boundary");
                // Continue decoding until the Drained event fires.
                let plan = src.poll_step(now).expect("final decode");
                now = plan.finish_at();
                let events = src.complete_step(now);
                assert!(events.iter().any(|e| matches!(e, EngineEvent::Drained(_))));
                let (_, commit_at) = coord.on_drained(req, &mut src, now).expect("awaiting");
                println!("t={now}: request drained — downtime starts");
                break commit_at;
            }
            StageOutcome::FinalCopy { commit_at } => {
                println!(
                    "t={stage_done_at}: source idle — drained immediately, final copy under way"
                );
                break commit_at;
            }
            StageOutcome::Aborted(reason) => panic!("aborted: {reason}"),
        }
    };

    let CommitResult::Committed(outcome) = coord.on_commit(id, &mut src, &mut dst, commit_at)
    else {
        panic!("commit failed");
    };
    println!(
        "t={commit_at}: committed — request resumed on {} after {} of downtime ({} stages, {} decode steps ran during the copy)",
        outcome.dst,
        outcome.downtime,
        outcome.stages,
        decode_steps_during
    );

    // Compare with the naive approaches.
    let total = src
        .state(req)
        .map(|s| s.cached_tokens)
        .unwrap_or_else(|| dst.state(req).expect("migrated").cached_tokens);
    for policy in [ReschedulePolicy::Recompute, ReschedulePolicy::BlockingCopy] {
        let d = reschedule_downtime(policy, total, &spec);
        println!(
            "  {} would have stalled the request for {} ({:.0}x the live migration)",
            policy.label(),
            d,
            d.as_secs_f64() / outcome.downtime.as_secs_f64()
        );
    }

    // And the request keeps generating on the destination.
    let plan = dst.poll_step(commit_at).expect("decode on destination");
    println!(
        "t={}: destination decodes the request's next token — no recompute needed",
        plan.finish_at()
    );
}
